// Adaptive sparse/dense frontier engine (core/frontier.hpp): unit tests of
// the Frontier itself, plus the parity suite pinning the adaptive kernels
// bit-for-bit against the adaptive=false baselines — distances, labels and
// every RoundStats counter — on all graph families, flat and partitioned
// (K ∈ {1, 2, 7}), including disconnected graphs and the single-vertex
// frontiers that force sparse→dense→sparse representation transitions.

#include "core/frontier.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "core/cluster.hpp"
#include "core/growing.hpp"
#include "graph/builder.hpp"
#include "exec/context.hpp"
#include "sssp/delta_stepping.hpp"
#include "sssp/sweep.hpp"
#include "test_helpers.hpp"

namespace gdiam {
namespace {

using core::Frontier;
using core::FrontierMode;
using core::FrontierOptions;
using test::Family;

// ---------------------------------------------------------------------------
// Frontier unit tests.

TEST(Frontier, InsertDedupAdvanceMaterialize) {
  Frontier f(100);
  EXPECT_TRUE(f.empty());
  EXPECT_TRUE(f.insert(3));
  EXPECT_FALSE(f.insert(3));  // duplicate within the round
  EXPECT_TRUE(f.insert(7));
  EXPECT_TRUE(f.insert(99));
  EXPECT_FALSE(f.contains(3));  // not sealed yet
  f.advance();
  EXPECT_EQ(f.size(), 3u);
  EXPECT_TRUE(f.contains(3));
  EXPECT_TRUE(f.contains(7));
  EXPECT_TRUE(f.contains(99));
  EXPECT_FALSE(f.contains(4));
  std::vector<NodeId> got = f.nodes();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<NodeId>{3, 7, 99}));
  // A sealed member is insertable again for the next round.
  EXPECT_TRUE(f.insert(3));
  f.advance();
  EXPECT_EQ(f.size(), 1u);
  EXPECT_TRUE(f.contains(3));
  EXPECT_FALSE(f.contains(7));
}

TEST(Frontier, LocalQueueOverflowFlushesBlocks) {
  FrontierOptions o;
  o.local_queue_capacity = 4;  // force many block flushes
  Frontier f(1000, o);
  for (NodeId v = 0; v < 1000; v += 2) EXPECT_TRUE(f.insert(v));
  f.advance();
  EXPECT_EQ(f.size(), 500u);
  std::vector<NodeId> got = f.nodes();
  std::sort(got.begin(), got.end());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], static_cast<NodeId>(2 * i));
  }
}

TEST(Frontier, AdaptiveSwitchesSparseDenseSparse) {
  FrontierOptions o;
  o.dense_fraction = 0.1;  // threshold: 10 of 100
  Frontier f(100, o);
  EXPECT_EQ(f.collect_mode(), FrontierMode::kSparse);
  for (NodeId v = 0; v < 50; ++v) f.insert(v);
  f.advance();  // sealed 50 > 10 → next collection dense
  EXPECT_EQ(f.current_mode(), FrontierMode::kSparse);
  EXPECT_EQ(f.collect_mode(), FrontierMode::kDense);
  for (NodeId v = 40; v < 60; ++v) EXPECT_TRUE(f.insert(v));
  for (NodeId v = 40; v < 60; ++v) EXPECT_FALSE(f.insert(v));  // bitmap dedup
  f.advance();  // sealed 20 > 10 → dense again; dense lists ascending
  EXPECT_EQ(f.current_mode(), FrontierMode::kDense);
  const auto& nodes = f.nodes();
  ASSERT_EQ(nodes.size(), 20u);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_EQ(nodes[i], static_cast<NodeId>(40 + i));
  }
  EXPECT_TRUE(f.contains(40));  // dense advance rewrote the stamps
  f.insert(5);
  f.advance();  // sealed 1 ≤ 10 → back to sparse
  EXPECT_EQ(f.collect_mode(), FrontierMode::kSparse);
  EXPECT_TRUE(f.contains(5));
  EXPECT_FALSE(f.contains(40));
}

TEST(Frontier, HysteresisKeepsDenseInsideTheBand) {
  FrontierOptions o;
  o.dense_fraction = 0.2;    // up at >20 of 100
  o.sparse_fraction = 0.05;  // down at <=5 of 100
  Frontier f(100, o);
  for (NodeId v = 0; v < 30; ++v) f.insert(v);
  f.advance();  // sealed 30 > 20 → dense
  EXPECT_EQ(f.collect_mode(), FrontierMode::kDense);
  for (NodeId v = 0; v < 10; ++v) f.insert(v);
  f.advance();  // sealed 10: inside the (5, 20] band → stays dense
  EXPECT_EQ(f.collect_mode(), FrontierMode::kDense);
  for (NodeId v = 0; v < 10; ++v) f.insert(v);
  f.advance();  // still inside the band: no thrash back and forth
  EXPECT_EQ(f.collect_mode(), FrontierMode::kDense);
  for (NodeId v = 0; v < 4; ++v) f.insert(v);
  f.advance();  // sealed 4 <= 5 → back to sparse
  EXPECT_EQ(f.collect_mode(), FrontierMode::kSparse);
  for (NodeId v = 0; v < 10; ++v) f.insert(v);
  f.advance();  // sealed 10 ≤ 20: sparse side of the band keeps sparse
  EXPECT_EQ(f.collect_mode(), FrontierMode::kSparse);
}

// ---------------------------------------------------------------------------
// Sampled frontier sizing (FrontierOptions::sampled_size_estimate): the
// probe-based estimate that replaces the exact sealed-size count in the
// dense→sparse switch. Universe 2^16 with 4096 probes gives dense_threshold
// 4096, sparse_threshold 1024 and a 2σ noise margin of
// 2·sqrt(1024·65536/4096) = 256 — so the down-switch needs estimate ≤ 768.
// (4096 probes rather than the default 1024 keeps every asserted decision
// ≥4σ away from its boundary: the draws are deterministic, but the test
// should not hinge on which side of a coin flip the fixed seed landed.)

constexpr NodeId kSampleN = 1u << 16;

FrontierOptions sampled_opts() {
  FrontierOptions o;
  o.sampled_size_estimate = true;
  o.size_probes = 4096;
  return o;
}

/// Seals one dense round of about `target` evenly spaced nodes.
void dense_round(Frontier& f, NodeId target) {
  const NodeId stride = std::max<NodeId>(1, kSampleN / std::max<NodeId>(target, 1));
  for (NodeId v = 0; v < kSampleN; v += stride) f.insert(v);
  f.advance();
}

TEST(FrontierSampled, EstimateIsDeterministicAndInsertionOrderFree) {
  Frontier a(kSampleN, sampled_opts());
  Frontier b(kSampleN, sampled_opts());
  // Go dense first (the estimate only serves dense collections).
  dense_round(a, 8000);
  dense_round(b, 8000);
  ASSERT_EQ(a.collect_mode(), FrontierMode::kDense);
  // Same set, opposite insertion orders: the bitmap — and therefore the
  // probe-based estimate — is a pure function of the set and the seed.
  for (NodeId v = 0; v < kSampleN; v += 3) a.insert(v);
  for (NodeId v = kSampleN - 1; v > 0; --v) {
    if (v % 3 == 0) b.insert(v);
  }
  b.insert(0);
  const std::size_t ea = a.estimate_size();
  EXPECT_EQ(ea, a.estimate_size());  // repeated calls agree
  EXPECT_EQ(ea, b.estimate_size());  // order-independent
  // And loosely accurate: true size ~21845, σ ≈ 485; allow a wide 4σ+ band.
  EXPECT_NEAR(static_cast<double>(ea), kSampleN / 3.0, 3900.0);
}

TEST(FrontierSampled, DownSwitchNeedsEstimateBelowMarginNotThreshold) {
  Frontier f(kSampleN, sampled_opts());
  EXPECT_EQ(f.sparse_threshold(), 1024u);
  EXPECT_EQ(f.estimate_noise_margin(), 256u);
  dense_round(f, 8000);  // above dense_threshold 4096 → dense
  ASSERT_EQ(f.collect_mode(), FrontierMode::kDense);

  // Sealed ~1009 ≤ sparse_threshold: the exact policy would drop to sparse,
  // but the estimate (~1009) does not clear threshold − margin = 768, so the
  // sampled policy conservatively stays dense.
  dense_round(f, 1000);
  EXPECT_TRUE(f.last_decision_sampled());
  EXPECT_EQ(f.collect_mode(), FrontierMode::kDense);

  // A genuinely collapsed frontier estimates ≈ 0–50 ≤ 768 → sparse again.
  dense_round(f, 12);
  EXPECT_TRUE(f.last_decision_sampled());
  EXPECT_EQ(f.collect_mode(), FrontierMode::kSparse);
  // Back in sparse mode the estimator disengages (sizes are exact and free).
  f.insert(1);
  f.advance();
  EXPECT_FALSE(f.last_decision_sampled());
}

TEST(FrontierSampled, NoOscillationWhenSizesHoverAtTheDownThreshold) {
  // Regression for the satellite concern: frontier waves hovering around
  // sparse_threshold must not flip representation on estimator noise. Every
  // hovering round estimates far above threshold − margin, so the frontier
  // stays dense for the whole wave; only the exact-size up-switch (4× higher)
  // or a true collapse moves it.
  Frontier f(kSampleN, sampled_opts());
  dense_round(f, 8000);
  ASSERT_EQ(f.collect_mode(), FrontierMode::kDense);
  for (int round = 0; round < 8; ++round) {
    dense_round(f, round % 2 == 0 ? 1000 : 1150);  // straddles 1024
    EXPECT_EQ(f.collect_mode(), FrontierMode::kDense) << "round " << round;
    EXPECT_TRUE(f.last_decision_sampled());
  }
}

TEST(FrontierSampled, SmallUniversesKeepTheExactPolicy) {
  // Below size_probes vertices the "estimate" would cost as much as the
  // truth: sampling must not engage, and decisions match the exact policy.
  FrontierOptions o = sampled_opts();
  Frontier f(100, o);
  for (NodeId v = 0; v < 50; ++v) f.insert(v);
  f.advance();
  EXPECT_FALSE(f.last_decision_sampled());
  EXPECT_EQ(f.collect_mode(), FrontierMode::kDense);
  f.insert(1);
  f.advance();  // exact sealed size 1 → sparse, no sampling involved
  EXPECT_FALSE(f.last_decision_sampled());
  EXPECT_EQ(f.collect_mode(), FrontierMode::kSparse);
}

TEST(FrontierSampled, DeltaSteppingResultsIdenticalUnderSampledSizing) {
  // The schedule knob never changes results: distances and every model
  // counter match the exact-count policy on a graph whose frontier waves
  // actually go dense (G(n,m) expansion blows past dense_threshold) on a
  // universe larger than the probe count.
  const Graph g = test::make_family(Family::kGnmUniform, 20000, 61);
  sssp::DeltaSteppingOptions opts;
  const auto exact = sssp::delta_stepping(g, 0, opts);
  opts.frontier.sampled_size_estimate = true;
  const auto sampled = sssp::delta_stepping(g, 0, opts);
  EXPECT_EQ(exact.dist, sampled.dist);
  EXPECT_EQ(exact.stats.messages, sampled.stats.messages);
  EXPECT_EQ(exact.stats.node_updates, sampled.stats.node_updates);
  EXPECT_EQ(exact.stats.relaxation_rounds, sampled.stats.relaxation_rounds);
  // Only the representation classification may move between the policies.
  EXPECT_EQ(exact.stats.sparse_rounds + exact.stats.dense_rounds,
            sampled.stats.sparse_rounds + sampled.stats.dense_rounds);
}

TEST(Frontier, HysteresisBandNeverInverts) {
  FrontierOptions o;
  o.dense_fraction = 0.1;
  o.sparse_fraction = 0.5;  // misconfigured: down above up
  Frontier f(100, o);
  // sparse_threshold() clamps to dense_threshold(): the switch degenerates
  // to the single-threshold policy instead of oscillating.
  EXPECT_EQ(f.sparse_threshold(), f.dense_threshold());
  for (NodeId v = 0; v < 50; ++v) f.insert(v);
  f.advance();
  EXPECT_EQ(f.collect_mode(), FrontierMode::kDense);
  f.insert(0);
  f.advance();  // sealed 1 <= clamped threshold → sparse
  EXPECT_EQ(f.collect_mode(), FrontierMode::kSparse);
}

TEST(Frontier, ContainsStableWhileDenseRoundCollects) {
  FrontierOptions o;
  o.dense_fraction = 0.01;
  Frontier f(64, o);
  for (NodeId v = 0; v < 32; ++v) f.insert(v);
  f.advance();
  ASSERT_EQ(f.collect_mode(), FrontierMode::kDense);
  // Fused scan+collect rounds (dense pull) insert while reading membership:
  // dense inserts must not disturb contains() of the current frontier.
  EXPECT_TRUE(f.insert(10));  // 10 is also a current member
  EXPECT_TRUE(f.contains(10));
  EXPECT_FALSE(f.contains(40));
  EXPECT_TRUE(f.insert(40));
  EXPECT_FALSE(f.contains(40));  // member of the next round, not this one
}

TEST(Frontier, AdaptiveOffStaysSparse) {
  FrontierOptions o;
  o.adaptive = false;
  o.dense_fraction = 0.0;
  Frontier f(50, o);
  for (NodeId v = 0; v < 50; ++v) f.insert(v);
  f.advance();
  EXPECT_EQ(f.current_mode(), FrontierMode::kSparse);
  EXPECT_EQ(f.collect_mode(), FrontierMode::kSparse);
}

TEST(Frontier, ClearForgetsCurrentAndPartialRounds) {
  Frontier f(32);
  f.insert(1);
  f.advance();
  f.insert(2);  // partially collected round
  f.clear();
  EXPECT_TRUE(f.empty());
  EXPECT_FALSE(f.contains(1));
  EXPECT_TRUE(f.insert(2));  // the abandoned insert was forgotten
  f.advance();
  EXPECT_TRUE(f.contains(2));
}

TEST(Frontier, ResetKeepsNothingAcrossRuns) {
  Frontier f(16);
  f.insert(3);
  f.advance();
  f.reset(16);
  EXPECT_TRUE(f.empty());
  EXPECT_FALSE(f.contains(3));
  f.reset(8);  // shrink
  EXPECT_EQ(f.num_nodes(), 8u);
}

// ---------------------------------------------------------------------------
// Δ-stepping parity: adaptive vs baseline must agree bit-for-bit on
// distances and every counter, for the flat kernel and all shard counts.

void expect_delta_parity(const Graph& g, NodeId source,
                         sssp::DeltaSteppingOptions opts,
                         double dense_fraction = 1.0 / 16.0) {
  opts.frontier.adaptive = false;
  const auto base = sssp::delta_stepping(g, source, opts);
  opts.frontier.adaptive = true;
  opts.frontier.dense_fraction = dense_fraction;
  const auto adap = sssp::delta_stepping(g, source, opts);

  EXPECT_EQ(base.dist, adap.dist);
  EXPECT_EQ(base.eccentricity, adap.eccentricity);
  EXPECT_EQ(base.farthest, adap.farthest);
  EXPECT_EQ(base.delta_used, adap.delta_used);
  EXPECT_EQ(base.buckets_processed, adap.buckets_processed);
  // Every shared RoundStats counter, field by field.
  EXPECT_EQ(base.stats.relaxation_rounds, adap.stats.relaxation_rounds);
  EXPECT_EQ(base.stats.auxiliary_rounds, adap.stats.auxiliary_rounds);
  EXPECT_EQ(base.stats.messages, adap.stats.messages);
  EXPECT_EQ(base.stats.node_updates, adap.stats.node_updates);
  EXPECT_EQ(base.stats.cross_messages, adap.stats.cross_messages);
  EXPECT_EQ(base.stats.cross_bytes, adap.stats.cross_bytes);
  // Mode counters: zero on the baseline; a full classification on adaptive.
  EXPECT_EQ(base.stats.sparse_rounds, 0u);
  EXPECT_EQ(base.stats.dense_rounds, 0u);
  EXPECT_EQ(adap.stats.sparse_rounds + adap.stats.dense_rounds,
            adap.stats.relaxation_rounds);
}

class DeltaFrontierParity
    : public testing::TestWithParam<std::tuple<Family, std::uint32_t>> {};

TEST_P(DeltaFrontierParity, BitIdenticalToBaseline) {
  const auto [family, k] = GetParam();
  const Graph g = test::make_family(family, 200, 29);
  for (const double mult : {0.5, 1.0, 8.0}) {
    sssp::DeltaSteppingOptions opts;
    opts.delta = mult * g.avg_weight();
    opts.partition = {.num_partitions = k,
                      .strategy = mr::PartitionStrategy::kHash};
    SCOPED_TRACE(testing::Message() << "mult=" << mult << " k=" << k);
    // Default threshold, plus an aggressive one that forces dense rounds.
    expect_delta_parity(g, 3, opts);
    expect_delta_parity(g, 3, opts, 0.005);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamiliesAllShards, DeltaFrontierParity,
    testing::Combine(testing::ValuesIn(test::all_families()),
                     testing::Values(1u, 2u, 7u)),
    [](const auto& info) {
      return std::string(test::family_name(std::get<0>(info.param))) + "_k" +
             std::to_string(std::get<1>(info.param));
    });

TEST(DeltaFrontierParity, DisconnectedGraph) {
  GraphBuilder b(90);
  for (NodeId u = 0; u + 1 < 40; ++u) b.add_edge(u, u + 1, 1.0);
  for (NodeId u = 41; u + 1 < 90; ++u) b.add_edge(u, u + 1, 2.0);
  const Graph g = b.build();  // node 40 is isolated
  for (const NodeId source : {NodeId{0}, NodeId{40}, NodeId{50}}) {
    for (const std::uint32_t k : {1u, 3u}) {
      sssp::DeltaSteppingOptions opts;
      opts.partition.num_partitions = k;
      SCOPED_TRACE(testing::Message() << "source=" << source << " k=" << k);
      expect_delta_parity(g, source, opts, 0.05);
    }
  }
}

/// Path with a leafy hub in the middle: frontier sizes run 1,1,…,big,1 — a
/// single-vertex frontier right after a dense burst, forcing the
/// sparse→dense→sparse representation transitions.
Graph hub_path_graph(NodeId path_len, NodeId leaves) {
  GraphBuilder b(path_len + leaves);
  for (NodeId u = 0; u + 1 < path_len; ++u) b.add_edge(u, u + 1, 1.0);
  const NodeId hub = path_len / 2;
  for (NodeId l = 0; l < leaves; ++l) b.add_edge(hub, path_len + l, 1.0);
  return b.build();
}

TEST(DeltaFrontierParity, HubPathForcesModeTransitions) {
  const Graph g = hub_path_graph(9, 120);
  sssp::DeltaSteppingOptions opts;
  opts.delta = 1000.0;  // one bucket: light phases are BFS waves
  opts.frontier.dense_fraction = 0.1;
  const auto r = sssp::delta_stepping(g, 0, opts);
  EXPECT_GT(r.stats.sparse_rounds, 0u) << mr::to_string(r.stats);
  EXPECT_GT(r.stats.dense_rounds, 0u) << mr::to_string(r.stats);
  expect_delta_parity(g, 0, opts, 0.1);
}

TEST(DeltaFrontierParity, SingleVertexAndEdgelessGraphs) {
  expect_delta_parity(build_graph(1, {}), 0, {});
  expect_delta_parity(build_graph(5, {}), 2, {});
}

// ---------------------------------------------------------------------------
// Context reuse: pooled RoundBuffers and cached SplitCsr across runs must
// not leak state between sources, graphs, deltas or shard counts.

TEST(ExecContextPooling, ReuseAcrossSourcesAndGraphsMatchesFresh) {
  const Graph g1 = test::make_family(Family::kGnmUniform, 150, 7);
  const Graph g2 = test::make_family(Family::kMeshUniform, 150, 9);
  exec::Context ctx;
  sssp::DeltaSteppingOptions opts;
  for (const Graph* g : {&g1, &g2, &g1}) {
    for (const NodeId source : {NodeId{0}, NodeId{5}, NodeId{17}}) {
      const auto pooled = sssp::delta_stepping(*g, source, opts, &ctx);
      const auto fresh = sssp::delta_stepping(*g, source, opts);
      EXPECT_EQ(pooled.dist, fresh.dist);
      EXPECT_EQ(pooled.stats, fresh.stats);
      EXPECT_EQ(pooled.farthest, fresh.farthest);
    }
  }
}

TEST(ExecContextPooling, ReuseAcrossDeltasAndPartitions) {
  const Graph g = test::make_family(Family::kRmatGiant, 200, 11);
  exec::Context ctx;
  for (const double mult : {1.0, 4.0, 1.0}) {
    for (const std::uint32_t k : {1u, 3u}) {
      sssp::DeltaSteppingOptions opts;
      opts.delta = mult * g.avg_weight();
      opts.partition.num_partitions = k;
      const auto pooled = sssp::delta_stepping(g, 2, opts, &ctx);
      const auto fresh = sssp::delta_stepping(g, 2, opts);
      EXPECT_EQ(pooled.dist, fresh.dist) << "mult=" << mult << " k=" << k;
      EXPECT_EQ(pooled.stats, fresh.stats) << "mult=" << mult << " k=" << k;
    }
  }
}

// ---------------------------------------------------------------------------
// Sweep kernels: Δ-stepping sweeps (one shared context, one SplitCsr) visit
// the same sources and return the same bound as the Dijkstra methodology.

TEST(SweepKernels, DeltaSteppingSweepMatchesDijkstra) {
  for (const Family f : {Family::kMeshUniform, Family::kGnmUniform}) {
    const Graph g = test::make_family(f, 180, 3);
    sssp::SweepOptions opts;
    opts.max_sweeps = 6;
    opts.seed = 17;
    const auto dij = sssp::diameter_lower_bound(g, opts);
    opts.use_delta_stepping = true;
    const auto ds = sssp::diameter_lower_bound(g, opts);
    EXPECT_EQ(dij.sources, ds.sources) << test::family_name(f);
    EXPECT_EQ(dij.eccentricities, ds.eccentricities);
    EXPECT_DOUBLE_EQ(dij.lower_bound, ds.lower_bound);
    // The Δ-stepping kernel reports MR cost; Dijkstra is outside the model.
    EXPECT_GT(ds.stats.rounds(), 0u);
    EXPECT_EQ(dij.stats.rounds(), 0u);
  }
}

TEST(SweepKernels, LegacyOverloadUnchanged) {
  const Graph g = test::make_family(Family::kTreePlusChords, 120, 5);
  const auto a = sssp::diameter_lower_bound(g, 4, 23);
  sssp::SweepOptions opts;
  opts.max_sweeps = 4;
  opts.seed = 23;
  const auto b = sssp::diameter_lower_bound(g, opts);
  EXPECT_EQ(a.sources, b.sources);
  EXPECT_DOUBLE_EQ(a.lower_bound, b.lower_bound);
}

// ---------------------------------------------------------------------------
// Δ-growing parity: per-step labels and counters for each policy, adaptive
// vs the adaptive=false baseline.

core::GrowingStepParams uniform_params(Weight delta) {
  core::GrowingStepParams p;
  p.light_threshold = delta;
  p.uniform_budget = delta;
  return p;
}

void run_growing_parity(const Graph& g, core::GrowingPolicy policy,
                        std::uint32_t k, const core::GrowingStepParams& p,
                        double dense_fraction,
                        const std::vector<Weight>* center_budget = nullptr) {
  const mr::PartitionOptions popts{.num_partitions = k,
                                   .strategy = mr::PartitionStrategy::kHash};
  core::GrowingEngine base(g, policy, popts);
  core::GrowingEngine adap(g, policy, popts);
  core::FrontierOptions off;
  off.adaptive = false;
  base.set_frontier_options(off);
  core::FrontierOptions on;
  on.dense_fraction = dense_fraction;
  adap.set_frontier_options(on);

  core::GrowingStepParams params = p;
  params.center_budget = center_budget;
  for (core::GrowingEngine* e : {&base, &adap}) {
    e->set_source(0, 0);
    e->set_source(g.num_nodes() / 3, g.num_nodes() / 3);
    e->block(2);
    e->set_source(2, 2);
    e->rebuild_frontier(params);
  }
  std::uint64_t sparse = 0, dense = 0;
  for (int step = 0; step < 64; ++step) {
    const auto rb = base.step(params);
    const auto ra = adap.step(params);
    ASSERT_EQ(rb.messages, ra.messages)
        << "policy " << static_cast<int>(policy) << " step " << step;
    ASSERT_EQ(rb.updates, ra.updates);
    ASSERT_EQ(rb.newly_labeled, ra.newly_labeled);
    ASSERT_EQ(rb.cross_messages, ra.cross_messages);
    ASSERT_EQ(rb.cross_bytes, ra.cross_bytes);
    ASSERT_EQ(base.labels(), adap.labels()) << "step " << step;
    // Baseline steps are unclassified; adaptive steps are exactly one mode.
    ASSERT_EQ(rb.sparse_rounds + rb.dense_rounds, 0u);
    ASSERT_EQ(ra.sparse_rounds + ra.dense_rounds, 1u);
    sparse += ra.sparse_rounds;
    dense += ra.dense_rounds;
    if (ra.updates == 0) break;
  }
  EXPECT_GT(sparse + dense, 0u);
}

class GrowingFrontierParity
    : public testing::TestWithParam<
          std::tuple<core::GrowingPolicy, Family, std::uint32_t>> {};

TEST_P(GrowingFrontierParity, StepsBitIdenticalToBaseline) {
  const auto [policy, family, k] = GetParam();
  const Graph g = test::make_family(family, 200, 55);
  const core::GrowingStepParams p = uniform_params(2.0 * g.avg_weight());
  run_growing_parity(g, policy, k, p, 1.0 / 16.0);
  run_growing_parity(g, policy, k, p, 0.01);  // force dense rounds early
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesFamiliesShards, GrowingFrontierParity,
    testing::Combine(testing::Values(core::GrowingPolicy::kPush,
                                     core::GrowingPolicy::kPull,
                                     core::GrowingPolicy::kPartitioned),
                     testing::Values(Family::kMeshUniform, Family::kRmatGiant,
                                     Family::kPathHeavyTail),
                     testing::Values(1u, 2u, 7u)),
    [](const auto& info) {
      const auto policy = std::get<0>(info.param);
      const char* pname = policy == core::GrowingPolicy::kPush     ? "push"
                          : policy == core::GrowingPolicy::kPull   ? "pull"
                                                                   : "bsp";
      return std::string(pname) + "_" +
             test::family_name(std::get<1>(info.param)) + "_k" +
             std::to_string(std::get<2>(info.param));
    });

TEST(GrowingFrontierParity, DisconnectedGraphAllPolicies) {
  GraphBuilder b(120);
  for (NodeId u = 0; u + 1 < 60; ++u) b.add_edge(u, u + 1, 1.0);
  for (NodeId u = 61; u + 1 < 120; ++u) b.add_edge(u, u + 1, 1.0);
  const Graph g = b.build();
  for (const auto policy :
       {core::GrowingPolicy::kPush, core::GrowingPolicy::kPull,
        core::GrowingPolicy::kPartitioned}) {
    run_growing_parity(g, policy, 3, uniform_params(500.0), 0.05);
  }
}

TEST(GrowingFrontierParity, PerCenterBudgetsAllPolicies) {
  const Graph g = test::make_family(Family::kGnmUniform, 150, 21);
  std::vector<Weight> budgets(g.num_nodes(), 0.0);
  budgets[0] = 3.0 * g.avg_weight();
  budgets[g.num_nodes() / 3] = 6.0 * g.avg_weight();
  budgets[2] = 2.0 * g.avg_weight();
  core::GrowingStepParams p;
  p.light_threshold = 4.0 * g.avg_weight();
  for (const auto policy :
       {core::GrowingPolicy::kPush, core::GrowingPolicy::kPull,
        core::GrowingPolicy::kPartitioned}) {
    run_growing_parity(g, policy, 2, p, 0.02, &budgets);
  }
}

TEST(GrowingFrontierParity, HubPathForcesModeTransitions) {
  // Single-vertex frontiers right before and after the hub burst: the
  // adaptive engine must cross sparse→dense→sparse and stay in lockstep.
  const Graph g = hub_path_graph(9, 120);
  for (const auto policy :
       {core::GrowingPolicy::kPush, core::GrowingPolicy::kPull,
        core::GrowingPolicy::kPartitioned}) {
    const mr::PartitionOptions popts{.num_partitions = 2};
    core::GrowingEngine base(g, policy, popts);
    core::GrowingEngine adap(g, policy, popts);
    core::FrontierOptions off;
    off.adaptive = false;
    base.set_frontier_options(off);
    core::FrontierOptions on;
    on.dense_fraction = 0.1;
    adap.set_frontier_options(on);
    const core::GrowingStepParams p = uniform_params(1000.0);
    for (core::GrowingEngine* e : {&base, &adap}) {
      e->set_source(0, 0);
      e->rebuild_frontier(p);
    }
    std::uint64_t sparse = 0, dense = 0;
    for (int step = 0; step < 32; ++step) {
      const auto rb = base.step(p);
      const auto ra = adap.step(p);
      ASSERT_EQ(rb.messages, ra.messages) << "step " << step;
      ASSERT_EQ(rb.updates, ra.updates);
      ASSERT_EQ(base.labels(), adap.labels());
      sparse += ra.sparse_rounds;
      dense += ra.dense_rounds;
      if (ra.updates == 0) break;
    }
    EXPECT_GT(sparse, 0u) << "policy " << static_cast<int>(policy);
    EXPECT_GT(dense, 0u) << "policy " << static_cast<int>(policy);
  }
}

// Raising the budget mid-run (a CLUSTER stage bump) rebuilds the adaptive
// frontier from the labels; both engines must stay in lockstep through it.
TEST(GrowingFrontierParity, ThresholdBumpRebuild) {
  const Graph g = test::make_family(Family::kGnmUniform, 150, 13);
  for (const auto policy :
       {core::GrowingPolicy::kPush, core::GrowingPolicy::kPull}) {
    core::GrowingEngine base(g, policy);
    core::GrowingEngine adap(g, policy);
    core::FrontierOptions off;
    off.adaptive = false;
    base.set_frontier_options(off);
    for (core::GrowingEngine* e : {&base, &adap}) e->set_source(0, 0);
    for (const double mult : {1.0, 2.0, 4.0}) {
      const core::GrowingStepParams p = uniform_params(mult * g.avg_weight());
      base.rebuild_frontier(p);
      adap.rebuild_frontier(p);
      for (int step = 0; step < 32; ++step) {
        const auto rb = base.step(p);
        const auto ra = adap.step(p);
        ASSERT_EQ(rb.messages, ra.messages) << "mult " << mult;
        ASSERT_EQ(rb.updates, ra.updates);
        ASSERT_EQ(base.labels(), adap.labels());
        if (ra.updates == 0) break;
      }
    }
  }
}

// Whole-algorithm parity: CLUSTER on the default adaptive engines produces
// the same decomposition and work counters as the legacy baseline (the mode
// counters are the adaptive run's extra classification).
TEST(GrowingFrontierParity, ClusterWholeAlgorithmCounters) {
  const Graph g = test::make_family(Family::kMeshUniform, 300, 3);
  for (const auto policy :
       {core::GrowingPolicy::kPush, core::GrowingPolicy::kPull}) {
    core::ClusterOptions opts;
    opts.tau = 4;
    opts.seed = 17;
    opts.policy = policy;
    const core::Clustering adaptive = core::cluster(g, opts);
    opts.frontier.adaptive = false;
    const core::Clustering baseline = core::cluster(g, opts);
    EXPECT_TRUE(adaptive.validate(g));
    EXPECT_EQ(adaptive.center_of, baseline.center_of);
    EXPECT_EQ(adaptive.dist_to_center, baseline.dist_to_center);
    EXPECT_EQ(adaptive.stats.relaxation_rounds,
              baseline.stats.relaxation_rounds);
    EXPECT_EQ(adaptive.stats.auxiliary_rounds, baseline.stats.auxiliary_rounds);
    EXPECT_EQ(adaptive.stats.messages, baseline.stats.messages);
    EXPECT_EQ(adaptive.stats.node_updates, baseline.stats.node_updates);
    EXPECT_EQ(adaptive.stats.sparse_rounds + adaptive.stats.dense_rounds,
              adaptive.stats.relaxation_rounds);
    EXPECT_EQ(baseline.stats.sparse_rounds + baseline.stats.dense_rounds, 0u);
  }
}

}  // namespace
}  // namespace gdiam
