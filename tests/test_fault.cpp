// Chaos suite for the deterministic fault-injection layer (util/fault.hpp,
// DESIGN.md §12) and everything hardened against it: spec parsing and
// replayable schedules, util/net framing edge cases driven from outside
// (torn frames, short reads, peer-gone-mid-frame, zero-length payloads),
// reap_child's SIGTERM→SIGKILL escalation, PoolTransport crash-replay under
// injected kills/teardowns — pinned *bit-identical* to clean runs, not just
// "survived" — and the daemon's admission control, deadlines, graceful
// drain, slow-reader disconnects and pool→local degradation, each answering
// with its typed error code.
//
// Registered under the ctest label `chaos` (CI runs it separately under
// ASan). Every test disarms on exit: the fault table is process-global.

#include <gtest/gtest.h>

#include <csignal>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/growing.hpp"
#include "mr/partition.hpp"
#include "mr/transport.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "test_helpers.hpp"
#include "util/fault.hpp"
#include "util/net.hpp"

namespace gdiam {
namespace {

namespace fault = util::fault;
namespace net = util::net;
using serve::Message;
using test::Family;

/// Every chaos test arms through this guard: the site table is shared by
/// the whole test binary, so a schedule must never outlive its test.
struct ScopedFaults {
  explicit ScopedFaults(const std::string& spec) { fault::arm(spec); }
  ~ScopedFaults() { fault::disarm(); }
};

std::string test_socket(const char* tag) {
  static int counter = 0;
  return "/tmp/gdiam_fault_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + "_" + std::to_string(counter++) +
         ".sock";
}

/// One request over a fresh connection; returns the response (no status
/// assertion — chaos tests care about *which* typed error came back).
Message roundtrip(const std::string& socket_path, const Message& req) {
  const int fd = net::connect_unix(socket_path);
  serve::write_message(fd, req);
  Message resp;
  EXPECT_TRUE(serve::read_message(fd, resp));
  ::close(fd);
  return resp;
}

// ---------------------------------------------------------------------------
// Spec parsing + deterministic triggers

TEST(FaultSpec, DisarmedCheckIsANoop) {
  fault::disarm();
  EXPECT_FALSE(fault::armed());
  const fault::Outcome o = fault::check("never.armed");
  EXPECT_FALSE(o.fail);
  EXPECT_FALSE(o.short_io);
}

TEST(FaultSpec, ArmDescribeDisarm) {
  const ScopedFaults f(
      "net.send=errno:EPIPE@3;pool.ship=kill@2;a.b=delay:20;c.d=short%0.5:7");
  EXPECT_TRUE(fault::armed());
  const std::string d = fault::describe();
  EXPECT_NE(d.find("net.send=errno:" + std::to_string(EPIPE) + "@3"),
            std::string::npos)
      << d;
  EXPECT_NE(d.find("pool.ship=kill@2"), std::string::npos) << d;
  EXPECT_NE(d.find("a.b=delay:20"), std::string::npos) << d;
  EXPECT_NE(d.find("c.d=short%0.5:7"), std::string::npos) << d;
  fault::disarm();
  EXPECT_FALSE(fault::armed());
}

TEST(FaultSpec, MalformedSpecsThrowWithoutDisturbingTheArmedSchedule) {
  const ScopedFaults f("t.keep=errno@5");
  for (const char* bad :
       {"no-equals-sign", "=errno", "t.x=warp", "t.x=errno:EBOGUS",
        "t.x=delay:-3", "t.x=short:arg", "t.x=kill:arg", "t.x=errno@0",
        "t.x=errno@x", "t.x=errno%0", "t.x=errno%1.5", "t.x=errno%0.5:zz"}) {
    EXPECT_THROW(fault::arm(bad), std::invalid_argument) << bad;
  }
  // The pre-existing schedule survived every rejected spec. describe()
  // prints the canonical form: bare `errno` carries its EIO default.
  EXPECT_TRUE(fault::armed());
  EXPECT_NE(fault::describe().find("t.keep=errno:" + std::to_string(EIO) +
                                   "@5"),
            std::string::npos)
      << fault::describe();
}

TEST(FaultSpec, NthHitFiresExactlyOnceWithThatErrno) {
  const ScopedFaults f("t.nth=errno:ECONNRESET@3");
  for (int hit = 1; hit <= 5; ++hit) {
    errno = 0;
    const fault::Outcome o = fault::check("t.nth");
    if (hit == 3) {
      EXPECT_TRUE(o.fail);
      EXPECT_EQ(errno, ECONNRESET);
    } else {
      EXPECT_FALSE(o.fail);
    }
  }
  EXPECT_EQ(fault::hits("t.nth"), 5u);
  EXPECT_EQ(fault::fired("t.nth"), 1u);
}

TEST(FaultSpec, SeededProbabilityReplaysExactly) {
  auto pattern = [](const std::string& spec) {
    fault::arm(spec);
    std::vector<bool> fired;
    fired.reserve(200);
    for (int i = 0; i < 200; ++i) fired.push_back(fault::check("t.p").fail);
    return fired;
  };
  const std::vector<bool> a = pattern("t.p=errno%0.25:42");
  const std::vector<bool> b = pattern("t.p=errno%0.25:42");
  const std::vector<bool> c = pattern("t.p=errno%0.25:43");
  fault::disarm();
  EXPECT_EQ(a, b);  // same seed: the schedule is a pure function of the hits
  EXPECT_NE(a, c);  // different seed: a different (still replayable) run
  const auto count = static_cast<std::size_t>(
      std::count(a.begin(), a.end(), true));
  EXPECT_GT(count, 20u);   // ~50 expected from p=0.25 over 200 hits
  EXPECT_LT(count, 100u);
}

TEST(FaultSpec, ArmsFromEnvironment) {
  ASSERT_EQ(::setenv("GDIAM_FAULTS", "t.env=errno@1", 1), 0);
  EXPECT_TRUE(fault::arm_from_env());
  EXPECT_TRUE(fault::armed());
  EXPECT_TRUE(fault::check("t.env").fail);

  ASSERT_EQ(::setenv("GDIAM_FAULTS", "broken spec", 1), 0);
  EXPECT_FALSE(fault::arm_from_env());  // reported, not thrown

  ASSERT_EQ(::unsetenv("GDIAM_FAULTS"), 0);
  EXPECT_TRUE(fault::arm_from_env());  // unset: nothing to do
  fault::disarm();
}

// ---------------------------------------------------------------------------
// util/net framing edge cases, driven through the fault layer

TEST(NetChaos, SendErrnoFailsTheWrite) {
  const ScopedFaults f("net.send=errno:EPIPE@1");
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  EXPECT_FALSE(net::write_all(fds[0], "abc", 3));
  EXPECT_EQ(errno, EPIPE);
  EXPECT_TRUE(net::write_all(fds[0], "abc", 3));  // one-shot: next write ok
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(NetChaos, ShortWriteTearsTheFrameAndTheReaderRejectsIt) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Message m;
  m.head = "ok";
  m.body = std::string(512, 'x');
  {
    const ScopedFaults f("net.send=short@1");
    EXPECT_THROW(serve::write_message(fds[0], m), std::runtime_error);
  }
  ::close(fds[0]);  // writer gone; the peer holds a genuine torn frame
  Message r;
  EXPECT_THROW(serve::read_message(fds[1], r), std::runtime_error);
  ::close(fds[1]);
}

TEST(NetChaos, RecvShortReadsLookLikePeerGoneMidFrame) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Message m;
  m.head = "ok";
  m.body = std::string(512, 'y');
  serve::write_message(fds[0], m);
  const ScopedFaults f("net.recv=short@2");  // hit 1 = length prefix read
  Message r;
  EXPECT_THROW(serve::read_message(fds[1], r), std::runtime_error);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(NetChaos, RecvErrnoIsAReadErrorNotEof) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Message m;
  m.head = "ok";
  serve::write_message(fds[0], m);
  const ScopedFaults f("net.recv=errno:ECONNRESET@1");
  Message r;
  EXPECT_THROW(serve::read_message(fds[1], r), std::runtime_error);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(NetChaos, ZeroLengthPayloadFramesRoundTrip) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::uint32_t zero = 0;
  ASSERT_TRUE(net::write_all(fds[0], &zero, sizeof zero));
  Message r;
  r.head = "sentinel";
  EXPECT_TRUE(serve::read_message(fds[1], r));
  EXPECT_TRUE(r.head.empty());  // an empty frame decodes to an empty message
  EXPECT_TRUE(r.fields.empty());
  EXPECT_TRUE(r.body.empty());
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(NetChaos, DelayFaultOnlyDelays) {
  const ScopedFaults f("net.send=delay:10@1");
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  EXPECT_TRUE(net::write_all(fds[0], "abc", 3));
  char buf[3];
  EXPECT_TRUE(net::read_exact(fds[1], buf, 3));
  ::close(fds[0]);
  ::close(fds[1]);
}

// ---------------------------------------------------------------------------
// reap_child: EINTR-clean bounded wait with SIGTERM→SIGKILL escalation

TEST(Reap, CleanChildExitCodeSurvives) {
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) ::_exit(7);
  const net::ReapResult rr = net::reap_child(pid, 2000);
  EXPECT_TRUE(rr.reaped);
  EXPECT_FALSE(rr.sigtermed);
  EXPECT_FALSE(rr.sigkilled);
  EXPECT_EQ(rr.exit_code(), 7);
}

TEST(Reap, CooperativeChildDiesOnSigtermWithoutSigkill) {
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Default SIGTERM disposition: the escalation's first shot lands.
    for (;;) ::pause();
  }
  const net::ReapResult rr = net::reap_child(pid, 50);
  EXPECT_TRUE(rr.reaped);
  EXPECT_TRUE(rr.sigtermed);
  EXPECT_FALSE(rr.sigkilled);
  EXPECT_EQ(rr.exit_code(), -1);  // an escalated child is never "success"
}

TEST(Reap, StubbornChildIsEscalatedToSigkill) {
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::signal(SIGTERM, SIG_IGN);
    for (;;) ::pause();
  }
  const net::ReapResult rr = net::reap_child(pid, 50);
  EXPECT_TRUE(rr.reaped);
  EXPECT_TRUE(rr.sigtermed);
  EXPECT_TRUE(rr.sigkilled);  // SIGTERM was ignored; SIGKILL cannot be
  EXPECT_EQ(rr.exit_code(), -1);
}

// ---------------------------------------------------------------------------
// Transport chaos: injected crashes/teardowns survived bit-identical

struct GrowthRun {
  std::vector<std::uint64_t> labels;
  std::vector<std::uint64_t> updates;
  std::uint64_t restarts = 0;
};

/// Runs partitioned cluster growth to fixpoint; the chaos contract is that
/// every survived faulted run equals the clean local reference exactly.
GrowthRun run_growth(const Graph& g, const mr::TransportOptions& topts) {
  const mr::PartitionOptions popts{.num_partitions = 4,
                                   .strategy = mr::PartitionStrategy::kHash};
  const core::GrowingStepParams params{.light_threshold = 2.0 * g.avg_weight(),
                                       .uniform_budget = 2.0 * g.avg_weight()};
  core::GrowingEngine eng(g, core::GrowingPolicy::kPartitioned, popts);
  if (topts.kind != mr::TransportKind::kLocal) {
    eng.set_transport_options(topts);
  }
  eng.set_source(0, 0);
  eng.set_source(g.num_nodes() / 2, g.num_nodes() / 2);
  eng.rebuild_frontier(params);
  GrowthRun out;
  for (int step = 0; step < 64; ++step) {
    const auto r = eng.step(params);
    out.updates.push_back(r.updates);
    if (r.updates == 0) break;
  }
  out.labels = eng.labels();
  if (auto* pool = dynamic_cast<mr::PoolTransport*>(eng.transport())) {
    out.restarts = pool->restarts();
  }
  return out;
}

TEST(TransportChaos, PoolShipKillRestartsAndReplaysBitIdentical) {
  const Graph g = test::make_family(Family::kGnmUniform, 200, 13);
  const GrowthRun ref = run_growth(g, {});
  const ScopedFaults f("pool.ship=kill@2");  // SIGKILL the 2nd shipped group
  const GrowthRun run =
      run_growth(g, {.kind = mr::TransportKind::kPool, .processes = 2});
  EXPECT_GE(run.restarts, 1u);
  EXPECT_EQ(run.labels, ref.labels);
  EXPECT_EQ(run.updates, ref.updates);
}

TEST(TransportChaos, PoolRecvShortTriggersReplayBitIdentical) {
  const Graph g = test::make_family(Family::kGnmUniform, 200, 13);
  const GrowthRun ref = run_growth(g, {});
  const ScopedFaults f("pool.recv=short@2");  // torn reassembly of group 2
  const GrowthRun run =
      run_growth(g, {.kind = mr::TransportKind::kPool, .processes = 2});
  EXPECT_GE(run.restarts, 1u);
  EXPECT_EQ(run.labels, ref.labels);
  EXPECT_EQ(run.updates, ref.updates);
}

TEST(TransportChaos, WorkerSelfKillMidSuperstepReplaysBitIdentical) {
  const Graph g = test::make_family(Family::kGnmUniform, 200, 13);
  const GrowthRun ref = run_growth(g, {});
  // Worker-side site: every resident worker SIGKILLs itself on the 2nd
  // superstep *it* sees (hit counters are per process) — a rolling crash the
  // restart budget must absorb every time.
  const ScopedFaults f("pool.worker.step=kill@2");
  const GrowthRun run =
      run_growth(g, {.kind = mr::TransportKind::kPool, .processes = 2});
  EXPECT_GE(run.restarts, 1u);
  EXPECT_EQ(run.labels, ref.labels);
  EXPECT_EQ(run.updates, ref.updates);
}

TEST(TransportChaos, RespawnedWorkerKeepsNodeBinding) {
  // NUMA placement under crash replay (DESIGN.md §13): a replacement worker
  // must land on the dead worker's node — the binding is a pure function of
  // (group, plan), never of the crash history. Emulated 2-node machine; RR
  // over K=4, P=2 gives group 0 = node 0 {0,2}, group 1 = node 1 {1,3}.
  ASSERT_EQ(::setenv("GDIAM_TOPOLOGY", "0;1", 1), 0);
  const Graph g = test::make_family(Family::kGnmUniform, 200, 13);
  const GrowthRun ref = run_growth(g, {});

  const mr::PartitionOptions popts{.num_partitions = 4,
                                   .strategy = mr::PartitionStrategy::kHash};
  const core::GrowingStepParams params{.light_threshold = 2.0 * g.avg_weight(),
                                       .uniform_budget = 2.0 * g.avg_weight()};
  core::GrowingEngine eng(g, core::GrowingPolicy::kPartitioned, popts);
  eng.set_transport_options({.kind = mr::TransportKind::kPool, .processes = 2});
  eng.set_placement_options({.strategy = mr::PlacementStrategy::kRoundRobin});
  eng.set_source(0, 0);
  eng.set_source(g.num_nodes() / 2, g.num_nodes() / 2);
  eng.rebuild_frontier(params);

  // SIGKILL on the 3rd shipped group: the first superstep ships groups 0 and
  // 1 (hits 1-2, recorded below), so the kill lands in the SECOND superstep
  // — after the initial spawn wave was snapshotted.
  const ScopedFaults f("pool.ship=kill@3");
  auto* pool = dynamic_cast<mr::PoolTransport*>(eng.transport());
  ASSERT_NE(pool, nullptr);
  GrowthRun run;
  std::vector<int> nodes_at_first_spawn;
  std::vector<pid_t> pids_at_first_spawn;
  for (int step = 0; step < 64; ++step) {
    const auto r = eng.step(params);
    if (step == 0) {
      for (std::uint32_t p = 0; p < 2; ++p) {
        nodes_at_first_spawn.push_back(pool->worker_node(p));
        pids_at_first_spawn.push_back(pool->worker_pid(p));
      }
    }
    run.updates.push_back(r.updates);
    if (r.updates == 0) break;
  }
  run.labels = eng.labels();
  ::unsetenv("GDIAM_TOPOLOGY");

  // The kill fired and was replayed...
  ASSERT_GE(pool->restarts(), 1u);
  EXPECT_EQ(run.labels, ref.labels);
  EXPECT_EQ(run.updates, ref.updates);
  // ...and the initial placement was real and survived the respawn: the
  // replacement worker (a different pid for at least one group) reports the
  // same node binding the dead worker had.
  EXPECT_EQ(nodes_at_first_spawn, (std::vector<int>{0, 1}));
  bool some_pid_changed = false;
  for (std::uint32_t p = 0; p < 2; ++p) {
    EXPECT_EQ(pool->worker_node(p), nodes_at_first_spawn[p]) << "group " << p;
    some_pid_changed |= pool->worker_pid(p) != pids_at_first_spawn[p];
  }
  EXPECT_TRUE(some_pid_changed);
}

TEST(TransportChaos, PoolSpawnFailureIsATypedTransportError) {
  const Graph g = test::make_family(Family::kGnmUniform, 120, 13);
  const ScopedFaults f("pool.spawn=errno:EAGAIN");  // every spawn fails
  EXPECT_THROW(
      run_growth(g, {.kind = mr::TransportKind::kPool, .processes = 2}),
      mr::TransportError);
}

TEST(TransportChaos, ProcessWorkerFaultIsATypedTransportError) {
  const Graph g = test::make_family(Family::kGnmUniform, 120, 13);
  const ScopedFaults f("proc.worker=errno@1");  // each fork counts its own
  EXPECT_THROW(
      run_growth(g, {.kind = mr::TransportKind::kProcess, .processes = 2}),
      mr::TransportError);
}

// ---------------------------------------------------------------------------
// Daemon chaos: typed errors, admission control, deadlines, degradation

constexpr const char* kSpec = "gen:mesh:side=16:weights=uniform:seed=7";

Message sssp_req(const char* graph, const char* source) {
  Message m;
  m.head = "sssp";
  m.set("graph", graph);
  m.set("source", source);
  return m;
}

TEST(ServerChaos, FaultVerbArmsReportsAndClears) {
  serve::ServerOptions sopts;
  sopts.socket_path = test_socket("verb");
  serve::Server server(sopts);
  server.start();

  Message arm;
  arm.head = "fault";
  arm.set("spec", "serve.load=errno@1");
  Message resp = roundtrip(sopts.socket_path, arm);
  EXPECT_EQ(resp.head, "ok");
  EXPECT_EQ(resp.get("armed"), "1");
  EXPECT_NE(resp.body.find("serve.load=errno"), std::string::npos);

  // The armed schedule bites: the first load fails as `internal` (the entry
  // stays retryable), the second — the @1 shot spent — succeeds.
  Message load;
  load.head = "load";
  load.set("graph", kSpec);
  resp = roundtrip(sopts.socket_path, load);
  EXPECT_EQ(resp.head, "error");
  EXPECT_EQ(resp.get("code"), serve::kErrInternal);
  resp = roundtrip(sopts.socket_path, load);
  EXPECT_EQ(resp.head, "ok");

  Message bad;
  bad.head = "fault";
  bad.set("spec", "not a spec");
  resp = roundtrip(sopts.socket_path, bad);
  EXPECT_EQ(resp.head, "error");
  EXPECT_EQ(resp.get("code"), serve::kErrBadRequest);

  Message clear;
  clear.head = "fault";
  clear.set("clear", "1");
  resp = roundtrip(sopts.socket_path, clear);
  EXPECT_EQ(resp.head, "ok");
  EXPECT_EQ(resp.get("armed"), "0");
  EXPECT_FALSE(fault::armed());
  server.stop();
}

TEST(ServerChaos, OversizedFrameGetsBadRequestThenDisconnect) {
  serve::ServerOptions sopts;
  sopts.socket_path = test_socket("oversz");
  serve::Server server(sopts);
  server.start();

  const int fd = net::connect_unix(sopts.socket_path);
  const std::uint32_t huge = serve::kMaxFrame + 1;
  ASSERT_TRUE(net::write_all(fd, &huge, sizeof huge));
  Message resp;
  ASSERT_TRUE(serve::read_message(fd, resp));
  EXPECT_EQ(resp.head, "error");
  EXPECT_EQ(resp.get("code"), serve::kErrBadRequest);
  // The stream was desynced by construction, so the daemon hangs up — it
  // must never try to re-frame garbage (or allocate the claimed 4 GiB).
  EXPECT_FALSE(serve::read_message(fd, resp));
  ::close(fd);
  server.stop();
}

TEST(ServerChaos, MalformedPayloadAnsweredAndConnectionSurvives) {
  serve::ServerOptions sopts;
  sopts.socket_path = test_socket("malformed");
  serve::Server server(sopts);
  server.start();

  const int fd = net::connect_unix(sopts.socket_path);
  const std::string payload = "estimate\nthis-line-has-no-equals\n";
  const auto len = static_cast<std::uint32_t>(payload.size());
  ASSERT_TRUE(net::write_all(fd, &len, sizeof len));
  ASSERT_TRUE(net::write_all(fd, payload.data(), payload.size()));
  Message resp;
  ASSERT_TRUE(serve::read_message(fd, resp));
  EXPECT_EQ(resp.head, "error");
  EXPECT_EQ(resp.get("code"), serve::kErrBadRequest);
  // Well-framed garbage leaves the stream at a frame boundary: the same
  // connection still serves a valid request.
  serve::write_message(fd, sssp_req("gen:path:nodes=50", "0"));
  ASSERT_TRUE(serve::read_message(fd, resp));
  EXPECT_EQ(resp.head, "ok");
  ::close(fd);
  server.stop();
}

TEST(ServerChaos, ExpiredDeadlineGetsTypedErrorNotService) {
  serve::ServerOptions sopts;
  sopts.socket_path = test_socket("deadline");
  sopts.worker_threads = 1;
  serve::Server server(sopts);
  server.start();

  // Park the scheduler at dequeue long past the client's budget.
  const ScopedFaults f("serve.dequeue=delay:300");
  Message req = sssp_req("gen:path:nodes=50", "0");
  req.set("deadline_ms", "50");
  const Message resp = roundtrip(sopts.socket_path, req);
  EXPECT_EQ(resp.head, "error");
  EXPECT_EQ(resp.get("code"), serve::kErrDeadlineExceeded);
  EXPECT_EQ(server.stats().deadline_exceeded.load(), 1u);

  Message bad = sssp_req("gen:path:nodes=50", "0");
  bad.set("deadline_ms", "soon");
  EXPECT_EQ(roundtrip(sopts.socket_path, bad).get("code"),
            serve::kErrBadRequest);
  server.stop();
}

TEST(ServerChaos, FullQueueShedsWithOverloaded) {
  serve::ServerOptions sopts;
  sopts.socket_path = test_socket("shed");
  sopts.worker_threads = 1;
  sopts.max_queue = 1;
  serve::Server server(sopts);
  server.start();

  // Warm the graph so queued requests are pure queue pressure.
  Message load;
  load.head = "load";
  load.set("graph", kSpec);
  EXPECT_EQ(roundtrip(sopts.socket_path, load).head, "ok");

  const ScopedFaults f("serve.dequeue=delay:800");
  // r1 is dequeued immediately and parked in the delay; r2 fills the
  // one-slot queue; r3 must be shed at admission with a typed error.
  std::thread t1([&] {
    EXPECT_EQ(roundtrip(sopts.socket_path, sssp_req(kSpec, "0")).head, "ok");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  std::thread t2([&] {
    EXPECT_EQ(roundtrip(sopts.socket_path, sssp_req(kSpec, "1")).head, "ok");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const Message shed = roundtrip(sopts.socket_path, sssp_req(kSpec, "2"));
  EXPECT_EQ(shed.head, "error");
  EXPECT_EQ(shed.get("code"), serve::kErrOverloaded);
  t1.join();
  t2.join();
  EXPECT_EQ(server.stats().shed.load(), 1u);

  // The new counters surface through the stats verb.
  Message stats;
  stats.head = "stats";
  const Message s = roundtrip(sopts.socket_path, stats);
  EXPECT_EQ(s.get("shed"), "1");
  EXPECT_EQ(s.get("deadline_exceeded"), "0");
  EXPECT_EQ(s.get("degraded"), "0");
  EXPECT_EQ(s.get("disconnected_slow"), "0");
  server.stop();
}

TEST(ServerChaos, ShutdownFinishesInFlightAndDrainsQueuedTyped) {
  serve::ServerOptions sopts;
  sopts.socket_path = test_socket("drain");
  sopts.worker_threads = 1;
  serve::Server server(sopts);
  server.start();

  Message load;
  load.head = "load";
  load.set("graph", kSpec);
  EXPECT_EQ(roundtrip(sopts.socket_path, load).head, "ok");

  const ScopedFaults f("serve.dequeue=delay:800");
  // r1 is in flight (inside the dequeue delay) when shutdown lands: it must
  // finish and answer ok. r2 is still queued: it must get `shutting_down`,
  // never a silent drop or a served-after-shutdown surprise.
  std::thread t1([&] {
    EXPECT_EQ(roundtrip(sopts.socket_path, sssp_req(kSpec, "0")).head, "ok");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  std::thread t2([&] {
    const Message r = roundtrip(sopts.socket_path, sssp_req(kSpec, "1"));
    EXPECT_EQ(r.head, "error");
    EXPECT_EQ(r.get("code"), serve::kErrShuttingDown);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  Message shutdown;
  shutdown.head = "shutdown";
  EXPECT_EQ(roundtrip(sopts.socket_path, shutdown).head, "ok");
  t1.join();
  t2.join();
  server.stop();
}

TEST(ServerChaos, PoolFailureDegradesToLocalBitIdentical) {
  serve::ServerOptions sopts;
  sopts.socket_path = test_socket("degrade");
  serve::Server server(sopts);
  server.start();

  // sssp rather than estimate: its relaxation rounds always go through the
  // BSP transport, while a tiny mesh decomposition at tau=8 can finish with
  // every node a center and zero supersteps — never touching the pool.
  Message base = sssp_req(kSpec, "0");
  base.set("partitions", "4");
  const Message local = roundtrip(sopts.socket_path, base);
  ASSERT_EQ(local.head, "ok");

  // With every pool spawn failing, the pool exhausts its restart budget and
  // throws mr::TransportError — which the scheduler answers by re-executing
  // on LocalTransport. The transport parity contract makes the degraded
  // body *equal to the local body*, down to the model-level counters.
  const ScopedFaults f("pool.spawn=errno:EAGAIN");
  Message pooled = base;
  pooled.set("transport", "pool");
  pooled.set("processes", "2");
  const Message degraded = roundtrip(sopts.socket_path, pooled);
  EXPECT_EQ(degraded.head, "ok");
  EXPECT_EQ(degraded.get("degraded"), "1");
  EXPECT_EQ(degraded.body, local.body);
  EXPECT_EQ(server.stats().degraded.load(), 1u);
  EXPECT_FALSE(local.has("degraded"));  // healthy responses are unmarked
  server.stop();
}

TEST(ServerChaos, SlowReaderIsDisconnectedNotWedgedOn) {
  serve::ServerOptions sopts;
  sopts.socket_path = test_socket("slow");
  sopts.worker_threads = 1;
  sopts.write_timeout_ms = 150;
  sopts.sndbuf_bytes = 4096;  // the test hook: tiny SO_SNDBUF fills fast
  serve::Server server(sopts);
  server.start();

  const int fd = net::connect_unix(sopts.socket_path);
  // Pipeline a few hundred requests and read none of the responses (each is
  // a ~250-byte summary, so it takes a pile of them): the tiny send buffer
  // fills, the bounded response write expires, and the daemon disconnects
  // this client instead of wedging its only worker forever.
  for (int i = 0; i < 300; ++i) {
    Message req = sssp_req("gen:path:nodes=50", "0");
    req.set("id", std::to_string(i));
    serve::write_message(fd, req);
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.stats().disconnected_slow.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(server.stats().disconnected_slow.load(), 1u);
  ::close(fd);
  server.stop();
}

// The flagship contract, end to end: under a seeded probabilistic schedule
// of torn sends and reset reads, every run that still answers "ok" answers
// with *exactly* the clean baseline body. Failure is allowed; drift is not.
TEST(ServerChaos, SurvivedRunsUnderNetChaosAreBitIdentical) {
  serve::ServerOptions sopts;
  sopts.socket_path = test_socket("smoke");
  serve::Server server(sopts);
  server.start();

  Message est;
  est.head = "estimate";
  est.set("graph", kSpec);
  est.set("tau", "8");
  const Message baseline = roundtrip(sopts.socket_path, est);
  ASSERT_EQ(baseline.head, "ok");

  int survived = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    // Client and server share this process, so the schedule tears frames on
    // both sides of the socket — exactly the point.
    fault::arm("net.send=short%0.08:" + std::to_string(seed) +
               ";net.recv=errno:ECONNRESET%0.06:" + std::to_string(seed + 100));
    try {
      const int fd = net::connect_unix(sopts.socket_path);
      serve::write_message(fd, est);
      Message resp;
      const bool got = serve::read_message(fd, resp);
      ::close(fd);
      if (got && resp.head == "ok") {
        EXPECT_EQ(resp.body, baseline.body) << "seed " << seed;
        ++survived;
      }
    } catch (const std::exception&) {
      // A torn client-side frame is a failed run, not a failed test.
    }
    fault::disarm();
  }
  EXPECT_GT(survived, 0) << "every seeded run failed; schedule too hot";
  server.stop();
}

}  // namespace
}  // namespace gdiam
