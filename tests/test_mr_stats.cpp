// Tests for mr/stats.hpp: arithmetic, the work metric, formatting.

#include <gtest/gtest.h>

#include "mr/stats.hpp"

namespace gdiam::mr {
namespace {

TEST(RoundStats, DefaultIsZero) {
  const RoundStats s;
  EXPECT_EQ(s.rounds(), 0u);
  EXPECT_EQ(s.work(), 0u);
}

TEST(RoundStats, RoundsSumRelaxAndAux) {
  RoundStats s;
  s.relaxation_rounds = 5;
  s.auxiliary_rounds = 3;
  EXPECT_EQ(s.rounds(), 8u);
}

TEST(RoundStats, WorkIsMessagesPlusUpdates) {
  RoundStats s;
  s.messages = 100;
  s.node_updates = 42;
  EXPECT_EQ(s.work(), 142u);
}

TEST(RoundStats, PlusEqualsAccumulates) {
  RoundStats a;
  a.relaxation_rounds = 1;
  a.messages = 10;
  RoundStats b;
  b.auxiliary_rounds = 2;
  b.node_updates = 5;
  a += b;
  EXPECT_EQ(a.rounds(), 3u);
  EXPECT_EQ(a.work(), 15u);
}

TEST(RoundStats, BinaryPlus) {
  RoundStats a, b;
  a.messages = 1;
  b.messages = 2;
  EXPECT_EQ((a + b).messages, 3u);
  EXPECT_EQ(a.messages, 1u);  // operands untouched
}

TEST(RoundStats, EqualityComparesAllFields) {
  RoundStats a, b;
  EXPECT_EQ(a, b);
  b.messages = 1;
  EXPECT_NE(a, b);
}

TEST(RoundStats, CrossCountersAccumulateAndCompare) {
  RoundStats a;
  a.cross_messages = 3;
  a.cross_bytes = 48;
  RoundStats b;
  b.cross_messages = 2;
  b.cross_bytes = 32;
  a += b;
  EXPECT_EQ(a.cross_messages, 5u);
  EXPECT_EQ(a.cross_bytes, 80u);
  // Cross traffic is a communication-volume view, not extra work.
  EXPECT_EQ(a.work(), 0u);
  RoundStats c, d;
  d.cross_bytes = 1;
  EXPECT_NE(c, d);
}

TEST(RoundStats, ToStringShowsCrossTrafficOnlyWhenPresent) {
  RoundStats s;
  s.messages = 10;
  EXPECT_EQ(to_string(s).find("cross"), std::string::npos);
  s.cross_messages = 4;
  s.cross_bytes = 64;
  const std::string str = to_string(s);
  EXPECT_NE(str.find("cross=4.000e+00msg/6.400e+01B"), std::string::npos);
}

TEST(RoundStats, ToStringMentionsAllCounters) {
  RoundStats s;
  s.relaxation_rounds = 7;
  s.auxiliary_rounds = 2;
  s.messages = 1000;
  s.node_updates = 50;
  const std::string str = to_string(s);
  EXPECT_NE(str.find("rounds=9"), std::string::npos);
  EXPECT_NE(str.find("relax=7"), std::string::npos);
  EXPECT_NE(str.find("1.000e+03"), std::string::npos);
}

}  // namespace
}  // namespace gdiam::mr
