// End-to-end tests for core/diameter.hpp — CL-DIAM: conservativeness against
// exact diameters, approximation quality on structured graphs, CLUSTER2
// variant, determinism, stats, and degenerate inputs.

#include <gtest/gtest.h>

#include "core/diameter.hpp"
#include "gen/basic.hpp"
#include "gen/mesh.hpp"
#include "gen/product.hpp"
#include "gen/weights.hpp"
#include "graph/builder.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/sweep.hpp"
#include "test_helpers.hpp"

namespace gdiam::core {
namespace {

using test::Family;

DiameterApproxOptions opts_with_tau(std::uint32_t tau, std::uint64_t seed = 1) {
  DiameterApproxOptions o;
  o.cluster.tau = tau;
  o.cluster.seed = seed;
  o.quotient.exact_threshold = 100000;  // always exact in tests
  return o;
}

TEST(ClDiam, EmptyGraph) {
  const DiameterApproxResult r = approximate_diameter(Graph{}, opts_with_tau(2));
  EXPECT_DOUBLE_EQ(r.estimate, 0.0);
}

TEST(ClDiam, SingleNodeAndSingleEdge) {
  EXPECT_DOUBLE_EQ(
      approximate_diameter(build_graph(1, {}), opts_with_tau(1)).estimate, 0.0);
  const DiameterApproxResult r = approximate_diameter(
      build_graph(2, {Edge{0, 1, 4.0}}), opts_with_tau(1));
  EXPECT_GE(r.estimate * (1.0 + 1e-9), 4.0);
}

// ---------------------------------------------------------------------------
// Conservativeness + bounded ratio across families, τ and seeds.

class ClDiamProperty
    : public testing::TestWithParam<
          std::tuple<Family, std::uint32_t, std::uint64_t>> {};

TEST_P(ClDiamProperty, ConservativeAndWithinSaneRatio) {
  const auto [family, tau, seed] = GetParam();
  const Graph g = test::make_family(family, 120, seed);
  const Weight diam = test::brute_force_diameter(g);
  const DiameterApproxResult r =
      approximate_diameter(g, opts_with_tau(tau, seed));

  ASSERT_TRUE(r.quotient_exact);
  EXPECT_GE(r.estimate * (1.0 + 1e-6), diam) << "not conservative";
  // The paper observes ratios < 1.4 at scale; tiny graphs with few clusters
  // are noisier, but a ratio beyond 4 would indicate a real defect.
  EXPECT_LE(r.estimate, 4.0 * diam + 1e-9)
      << test::family_name(family) << " tau=" << tau;
  EXPECT_DOUBLE_EQ(r.estimate_classic, r.quotient_diam + 2.0 * r.radius);
  // The radius-aware default is never worse than the paper's formula.
  EXPECT_LE(r.estimate, r.estimate_classic * (1.0 + 1e-12));
  EXPECT_EQ(r.num_clusters, r.clustering.num_clusters());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClDiamProperty,
    testing::Combine(testing::ValuesIn(test::all_families()),
                     testing::Values(2u, 8u), testing::Values(5u, 17u)),
    [](const auto& param_info) {
      return std::string(test::family_name(std::get<0>(param_info.param))) +
             "_t" + std::to_string(std::get<1>(param_info.param)) + "_s" +
             std::to_string(std::get<2>(param_info.param));
    });

TEST(ClDiam, GoodRatioOnLargeUnitMesh) {
  // Large structured instance: the regime where the paper reports ratio
  // ≤ 1.23 on mesh. Allow 1.6 for the much smaller test size.
  const Graph g = gen::mesh(48);
  const Weight diam = 2.0 * 47.0;
  const DiameterApproxResult r = approximate_diameter(g, opts_with_tau(4, 3));
  ASSERT_TRUE(r.quotient_exact);
  EXPECT_GE(r.estimate * (1.0 + 1e-9), diam);
  EXPECT_LE(r.estimate / diam, 1.6) << "ratio " << r.estimate / diam;
}

TEST(ClDiam, GoodRatioOnLongPath) {
  const Graph g = gen::path(2000);
  const DiameterApproxResult r = approximate_diameter(g, opts_with_tau(2, 7));
  ASSERT_TRUE(r.quotient_exact);
  const double ratio = r.estimate / 1999.0;
  EXPECT_GE(ratio, 1.0 - 1e-9);
  EXPECT_LE(ratio, 1.6) << "ratio " << ratio;
}

TEST(ClDiam, Cluster2VariantAlsoConservative) {
  for (const Family f : {Family::kGnmUniform, Family::kMeshUniform}) {
    const Graph g = test::make_family(f, 100, 11);
    const Weight diam = test::brute_force_diameter(g);
    DiameterApproxOptions o = opts_with_tau(2, 11);
    o.use_cluster2 = true;
    const DiameterApproxResult r = approximate_diameter(g, o);
    ASSERT_TRUE(r.quotient_exact);
    EXPECT_GE(r.estimate * (1.0 + 1e-6), diam) << test::family_name(f);
  }
}

TEST(ClDiam, DeterministicForFixedSeed) {
  const Graph g = test::make_family(Family::kRmatGiant, 300, 13);
  const DiameterApproxResult a = approximate_diameter(g, opts_with_tau(4, 99));
  const DiameterApproxResult b = approximate_diameter(g, opts_with_tau(4, 99));
  EXPECT_DOUBLE_EQ(a.estimate, b.estimate);
  EXPECT_EQ(a.stats, b.stats);
  EXPECT_EQ(a.num_clusters, b.num_clusters);
}

TEST(ClDiam, WorksOnDisconnectedGraphs) {
  GraphBuilder b(80);
  for (NodeId u = 0; u + 1 < 50; ++u) b.add_edge(u, u + 1, 1.0);  // diam 49
  for (NodeId u = 50; u + 1 < 80; ++u) b.add_edge(u, u + 1, 1.0);  // diam 29
  const Graph g = b.build();
  const DiameterApproxResult r = approximate_diameter(g, opts_with_tau(1, 3));
  ASSERT_TRUE(r.quotient_exact);
  EXPECT_GE(r.estimate * (1.0 + 1e-9), 49.0);
}

TEST(ClDiam, StatsCoverWholePipeline) {
  const Graph g = test::make_family(Family::kMeshUniform, 400, 17);
  const DiameterApproxResult r = approximate_diameter(g, opts_with_tau(2, 5));
  EXPECT_GT(r.stats.relaxation_rounds, 0u);
  // Pipeline adds quotient construction + diameter rounds on top of the
  // clustering's own auxiliary rounds.
  EXPECT_GE(r.stats.auxiliary_rounds, r.clustering.stats.auxiliary_rounds + 2);
  EXPECT_GT(r.quotient_edges, 0u);
}

TEST(ClDiam, EstimateAtLeastSweepLowerBound) {
  // Cross-check the two estimators against each other on a bigger graph
  // where brute force is infeasible: upper bound ≥ lower bound, and the two
  // should be within the paper's observed ratio band.
  const Graph g = gen::uniform_weights(gen::mesh(60), 23);
  const Weight lb = sssp::diameter_lower_bound(g, 8, 23).lower_bound;
  const DiameterApproxResult r = approximate_diameter(g, opts_with_tau(4, 23));
  ASSERT_TRUE(r.quotient_exact);
  EXPECT_GE(r.estimate * (1.0 + 1e-9), lb);
  EXPECT_LE(r.estimate / lb, 2.0);
}

TEST(ClDiam, ProductGraphDiameterAdds) {
  // roads(S)-style: path □ cycle has diameter = sum of factor diameters.
  const Graph g = gen::cartesian_product(gen::path(40), gen::cycle(21));
  const Weight diam = 39.0 + 10.0;
  const DiameterApproxResult r = approximate_diameter(g, opts_with_tau(2, 29));
  ASSERT_TRUE(r.quotient_exact);
  EXPECT_GE(r.estimate * (1.0 + 1e-9), diam);
  EXPECT_LE(r.estimate / diam, 2.0);
}

TEST(ClDiam, QuotientSmallerThanGraph) {
  const Graph g = test::make_family(Family::kMeshUniform, 2500, 31);
  const DiameterApproxResult r = approximate_diameter(g, opts_with_tau(2, 7));
  EXPECT_LT(r.num_clusters, g.num_nodes() / 2);
}

}  // namespace
}  // namespace gdiam::core
