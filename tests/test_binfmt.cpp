// The .gcsr lock-down suite (graph/binfmt.hpp; DESIGN.md §14).
//
// Three layers of guarantees, each pinned here:
//
//   1. Round-trip properties — for every test family, the mapped CSR arrays,
//      the persisted weight stats and every presplit sidecar are bit-
//      identical to the in-memory originals (not approximately: memcmp).
//   2. Warm-path semantics — exec::Context::adopt_presplits is all-or-
//      nothing, fingerprint-guarded, and produces splits indistinguishable
//      from freshly computed ones; end-to-end estimate/SSSP runs on a mapped
//      graph are bit-identical to runs on a text-ingested copy across every
//      transport and partition count.
//   3. Corruption rejection — a .gcsr that is truncated, bit-flipped,
//      version-bumped, misaligned or torn by an injected write fault is
//      rejected with the contracted typed BinfmtErrc, never a crash and
//      never a half-valid Graph. The corruption helpers re-stamp the
//      checksums the validator checks *before* the mutated field, so each
//      test fails on exactly the check it targets.

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/diameter.hpp"
#include "exec/context.hpp"
#include "graph/binfmt.hpp"
#include "graph/io.hpp"
#include "graph/split_csr.hpp"
#include "serve/graphs.hpp"
#include "sssp/delta_stepping.hpp"
#include "test_helpers.hpp"
#include "util/fault.hpp"

namespace gdiam::io {
namespace {

// --- on-disk layout constants (frozen; mirrored from binfmt.cpp) -----------

constexpr std::size_t kHeaderSize = 128;
constexpr std::size_t kHeaderChecksumOff = 120;  // u64, over bytes [0, 120)
constexpr std::size_t kVersionOff = 8;           // u32
constexpr std::size_t kNumNodesOff = 16;         // u64
constexpr std::size_t kWeightKindOff = 32;       // u32
constexpr std::size_t kSectionCountOff = 36;     // u32
constexpr std::size_t kTableOffOff = 40;         // u64
constexpr std::size_t kEntrySize = 40;
constexpr std::size_t kEntryKindOff = 0;      // u32
constexpr std::size_t kEntryOffsetOff = 8;    // u64
constexpr std::size_t kEntryLengthOff = 16;   // u64
constexpr std::size_t kEntryChecksumOff = 24; // u64

// --- fixture ---------------------------------------------------------------

class BinfmtTest : public ::testing::Test {
 protected:
  std::string path(const std::string& name) {
    std::string p = ::testing::TempDir() + "gdiam_binfmt_" +
                    std::to_string(::getpid()) + "_" + name;
    files_.push_back(p);
    return p;
  }

  void TearDown() override {
    util::fault::disarm();
    for (const auto& f : files_) ::unlink(f.c_str());
  }

 private:
  std::vector<std::string> files_;
};

// --- byte-surgery helpers --------------------------------------------------

std::vector<unsigned char> slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << path;
  return {std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>()};
}

void dump(const std::string& path, const std::vector<unsigned char>& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(f.good()) << path;
}

template <typename T>
T rd(const std::vector<unsigned char>& b, std::size_t off) {
  T v{};
  std::memcpy(&v, b.data() + off, sizeof v);
  return v;
}

template <typename T>
void wr(std::vector<unsigned char>& b, std::size_t off, T v) {
  std::memcpy(b.data() + off, &v, sizeof v);
}

void restamp_header(std::vector<unsigned char>& b) {
  wr<std::uint64_t>(b, kHeaderChecksumOff,
                    gcsr_checksum(b.data(), kHeaderChecksumOff));
}

void restamp_table(std::vector<unsigned char>& b) {
  const auto count = rd<std::uint32_t>(b, kSectionCountOff);
  const auto toff = rd<std::uint64_t>(b, kTableOffOff);
  const std::size_t table_bytes = std::size_t{count} * kEntrySize;
  wr<std::uint64_t>(b, toff + table_bytes,
                    gcsr_checksum(b.data() + toff, table_bytes));
}

/// Byte offset of the i-th section table entry.
std::size_t entry_at(const std::vector<unsigned char>& b, std::size_t i) {
  return rd<std::uint64_t>(b, kTableOffOff) + i * kEntrySize;
}

/// The typed code a failing open produces, or nullopt when it succeeds.
std::optional<BinfmtErrc> open_code(const std::string& path,
                                    const GcsrOpenOptions& opts = {}) {
  try {
    (void)open_mmap(path, opts);
  } catch (const BinfmtError& e) {
    return e.code();
  }
  return std::nullopt;
}

template <typename T>
bool bits_equal(std::span<const T> a, std::span<const T> b) {
  if (a.size() != b.size()) return false;
  return a.empty() || std::memcmp(a.data(), b.data(), a.size_bytes()) == 0;
}

bool same_csr(const Graph& a, const Graph& b) {
  return bits_equal(a.offsets(), b.offsets()) &&
         bits_equal(a.targets(), b.targets()) &&
         bits_equal(a.edge_weights(), b.edge_weights());
}

bool same_split(const CsrSplit& a, const CsrSplit& b) {
  return bits_equal<EdgeIndex>(a.split, b.split) &&
         bits_equal<NodeId>(a.targets, b.targets) &&
         bits_equal<Weight>(a.weights, b.weights);
}

/// Writes g as a full-precision edge list ("%.17g" round-trips every double
/// exactly) so the text-ingest arm of the parity tests carries bit-identical
/// weights. io::write_edge_list streams default precision — fine for humans,
/// not for a bit-parity contract.
void write_exact_edge_list(const Graph& g, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr) << path;
  for (const Edge& e : to_edge_list(g)) {
    std::fprintf(f, "%u %u %.17g\n", e.u, e.v, e.w);
  }
  ASSERT_EQ(std::fclose(f), 0);
}

mr::RoundStats zero_wire(mr::RoundStats s) {
  s.wire_messages = 0;
  s.wire_bytes = 0;
  return s;
}

// --- 1. round-trip properties ----------------------------------------------

TEST_F(BinfmtTest, RoundTripIsBitIdenticalForEveryFamily) {
  int i = 0;
  for (const test::Family f : test::all_families()) {
    SCOPED_TRACE(test::family_name(f));
    const Graph g = test::make_family(f, 120, 42 + i);
    const std::string p = path(std::string("rt_") + test::family_name(f) +
                               ".gcsr");
    // Unsorted with a duplicate: the writer sorts and dedups.
    write_gcsr(g, p, {.presplit_deltas = {0.5, 0.05, 0.5}});

    const MappedGraph m = open_mmap(p);
    const Graph& h = m.graph();
    EXPECT_TRUE(h.is_mapped());
    EXPECT_EQ(h.num_nodes(), g.num_nodes());
    EXPECT_EQ(h.num_directed_edges(), g.num_directed_edges());
    EXPECT_TRUE(same_csr(g, h));
    // Persisted weight stats are the exact doubles, not recomputed ones.
    EXPECT_EQ(h.min_weight(), g.min_weight());
    EXPECT_EQ(h.max_weight(), g.max_weight());
    EXPECT_EQ(h.avg_weight(), g.avg_weight());

    EXPECT_EQ(m.presplit_deltas(), (std::vector<Weight>{0.05, 0.5}));
    for (const Weight delta : m.presplit_deltas()) {
      CsrSplit loaded;
      ASSERT_TRUE(m.load_presplit(delta, loaded));
      const CsrSplit fresh = presplit_csr(g.offsets(), g.targets(),
                                          g.edge_weights(), delta);
      EXPECT_TRUE(same_split(loaded, fresh)) << "delta=" << delta;
    }
    CsrSplit missing;
    EXPECT_FALSE(m.load_presplit(0.123, missing));
    ++i;
  }
}

TEST_F(BinfmtTest, RoundTripsDegenerateGraphs) {
  for (const NodeId n : {NodeId{0}, NodeId{1}, NodeId{3}}) {
    SCOPED_TRACE(n);
    const Graph g = build_graph(n, {});  // no edges at all
    const std::string p = path("tiny_" + std::to_string(n) + ".gcsr");
    write_gcsr(g, p, {.presplit_deltas = {1.0}});
    const MappedGraph m = open_mmap(p);
    EXPECT_EQ(m.graph().num_nodes(), n);
    EXPECT_EQ(m.graph().num_directed_edges(), 0u);
    EXPECT_TRUE(same_csr(g, m.graph()));
    CsrSplit s;
    ASSERT_TRUE(m.load_presplit(1.0, s));
    EXPECT_EQ(s.split.size(), n);
  }
}

TEST_F(BinfmtTest, FingerprintIsAFunctionOfTheGraphAlone) {
  const Graph g = test::make_family(test::Family::kMeshUniform, 100, 7);
  const std::string a = path("fp_a.gcsr");
  const std::string b = path("fp_b.gcsr");
  write_gcsr(g, a);
  write_gcsr(g, b, {.presplit_deltas = {0.25}});  // sidecars don't change it
  EXPECT_EQ(open_mmap(a).fingerprint(), open_mmap(b).fingerprint());

  const Graph other = test::make_family(test::Family::kGnmUniform, 100, 8);
  const std::string c = path("fp_c.gcsr");
  write_gcsr(other, c);
  EXPECT_NE(open_mmap(a).fingerprint(), open_mmap(c).fingerprint());
}

TEST_F(BinfmtTest, MappingOutlivesTheMappedGraphObject) {
  const Graph src = test::make_family(test::Family::kTreePlusChords, 80, 3);
  const std::string p = path("keepalive.gcsr");
  write_gcsr(src, p);
  Graph g;
  {
    const MappedGraph m = open_mmap(p);
    g = m.graph();
  }  // m is gone; g's backing keeps the mapping alive
  EXPECT_TRUE(g.is_mapped());
  EXPECT_TRUE(same_csr(src, g));
  EXPECT_TRUE(g.validate());
}

TEST_F(BinfmtTest, RejectsNonFinitePresplitDeltas) {
  const Graph g = build_graph(2, {{0, 1, 1.0}});
  const std::string p = path("baddelta.gcsr");
  try {
    write_gcsr(g, p, {.presplit_deltas = {-1.0}});
    FAIL() << "negative delta accepted";
  } catch (const BinfmtError& e) {
    EXPECT_EQ(e.code(), BinfmtErrc::kBadPresplit);
  }
}

// --- 2a. warm-path semantics: adoption --------------------------------------

TEST_F(BinfmtTest, AdoptPresplitsWarmsTheContextCache) {
  const Graph src = test::make_family(test::Family::kGnmUniform, 150, 11);
  const std::string p = path("adopt.gcsr");
  write_gcsr(src, p, {.presplit_deltas = {0.1, 0.3}});

  const MappedGraph m = open_mmap(p);
  const Graph g = m.graph();  // copies share the mapping: still covered
  ASSERT_TRUE(m.covers(g));

  exec::Context ctx;
  EXPECT_FALSE(ctx.has_split(g, 0.1));
  EXPECT_EQ(ctx.adopt_presplits(g, m), 2u);
  EXPECT_TRUE(ctx.has_split(g, 0.1));
  EXPECT_TRUE(ctx.has_split(g, 0.3));
  EXPECT_FALSE(ctx.has_split(g, 0.2));
  // Idempotent: everything is already cached.
  EXPECT_EQ(ctx.adopt_presplits(g, m), 0u);

  // The adopted split is indistinguishable from a freshly computed one.
  const SplitCsr& adopted = ctx.split_for(g, 0.1);
  EXPECT_TRUE(adopted.validate());
  const CsrSplit fresh = presplit_csr(g.offsets(), g.targets(),
                                      g.edge_weights(), 0.1);
  EXPECT_TRUE(same_split(adopted.data(), fresh));
}

TEST_F(BinfmtTest, AdoptionRejectsAGraphTheFileDoesNotCover) {
  const Graph src = test::make_family(test::Family::kMeshUniform, 100, 5);
  const std::string p = path("foreign.gcsr");
  write_gcsr(src, p, {.presplit_deltas = {0.2}});
  const MappedGraph m = open_mmap(p);

  // `src` is the same graph by value, but it is owned storage, not a view
  // into this mapping — adoption must refuse it.
  EXPECT_FALSE(m.covers(src));
  exec::Context ctx;
  try {
    ctx.adopt_presplits(src, m);
    FAIL() << "adoption against a non-covered graph succeeded";
  } catch (const BinfmtError& e) {
    EXPECT_EQ(e.code(), BinfmtErrc::kFingerprintMismatch);
  }
  EXPECT_FALSE(ctx.has_split(src, 0.2));
}

TEST_F(BinfmtTest, MappedViewRebuildsTheSidecarIndexFromABacking) {
  const Graph src = test::make_family(test::Family::kRmatGiant, 128, 9);
  const std::string p = path("view.gcsr");
  write_gcsr(src, p, {.presplit_deltas = {0.4}});

  const MappedGraph m = open_mmap(p);
  const Graph g = m.graph();
  const std::optional<MappedGraph> v = mapped_view(g);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->fingerprint(), m.fingerprint());
  EXPECT_EQ(v->presplit_deltas(), m.presplit_deltas());
  EXPECT_TRUE(v->covers(g));

  EXPECT_FALSE(mapped_view(src).has_value());  // owned graphs have no view
}

TEST_F(BinfmtTest, GraphStoreColdStartAdoptsSidecars) {
  const Graph src = test::make_family(test::Family::kMeshUniform, 100, 21);
  const std::string p = path("store.gcsr");
  write_gcsr(src, p, {.presplit_deltas = {0.15}});

  serve::GraphStore store;
  serve::GraphStore::Entry& e = store.get("file:" + p);
  EXPECT_TRUE(e.loaded);
  EXPECT_TRUE(e.graph.is_mapped());
  EXPECT_TRUE(same_csr(src, e.graph));
  // The daemon's first query at Δ=0.15 hits the persisted layout.
  EXPECT_TRUE(e.ctx.has_split(e.graph, 0.15));
}

// --- 2b. warm-path semantics: end-to-end parity -----------------------------

struct ParityConfig {
  std::uint32_t partitions;
  mr::TransportKind transport;
  std::uint32_t processes;
  const char* name;
};

sssp::DeltaSteppingOptions sssp_opts(const ParityConfig& c) {
  sssp::DeltaSteppingOptions o;
  o.delta = 0.0;  // heuristic Δ = avg weight: exercises the persisted stat
  o.partition.num_partitions = c.partitions;
  o.transport.kind = c.transport;
  o.transport.processes = c.processes;
  return o;
}

/// All transports × K ∈ {1, 2, 7}; process/pool need a partitioned run, so
/// K=1 pairs only with the local transport.
std::vector<ParityConfig> parity_configs() {
  return {
      {1, mr::TransportKind::kLocal, 1, "K1/local"},
      {2, mr::TransportKind::kLocal, 1, "K2/local"},
      {2, mr::TransportKind::kProcess, 2, "K2/process"},
      {2, mr::TransportKind::kPool, 2, "K2/pool"},
      {7, mr::TransportKind::kLocal, 1, "K7/local"},
      {7, mr::TransportKind::kProcess, 2, "K7/process"},
      {7, mr::TransportKind::kPool, 2, "K7/pool"},
  };
}

TEST_F(BinfmtTest, SsspParityTextVsMmapAcrossTransports) {
  int i = 0;
  for (const test::Family f : test::all_families()) {
    SCOPED_TRACE(test::family_name(f));
    const Graph built = test::make_family(f, 110, 77 + i);
    const std::string tp = path(std::string("par_") + test::family_name(f) +
                                ".el");
    const std::string bp = path(std::string("par_") + test::family_name(f) +
                                ".gcsr");
    write_exact_edge_list(built, tp);
    write_gcsr(built, bp,
               {.presplit_deltas = {built.avg_weight()}});

    const Graph text = read_edge_list_file(tp, /*compact_ids=*/false);
    ASSERT_EQ(text.num_nodes(), built.num_nodes());
    const MappedGraph m = open_mmap(bp);
    const Graph mapped = m.graph();

    exec::Context text_ctx;
    exec::Context map_ctx;
    map_ctx.adopt_presplits(mapped, m);

    for (const ParityConfig& c : parity_configs()) {
      SCOPED_TRACE(c.name);
      const auto opts = sssp_opts(c);
      const auto a = sssp::delta_stepping(text, 0, opts, &text_ctx);
      const auto b = sssp::delta_stepping(mapped, 0, opts, &map_ctx);
      EXPECT_EQ(a.dist, b.dist);
      EXPECT_EQ(a.eccentricity, b.eccentricity);
      EXPECT_EQ(a.farthest, b.farthest);
      EXPECT_EQ(a.delta_used, b.delta_used);  // heuristic Δ from same avg
      EXPECT_EQ(a.buckets_processed, b.buckets_processed);
      // Wire counters depend on transport framing, not the graph source —
      // zeroed the same way tests/test_transport.cpp compares them.
      EXPECT_EQ(zero_wire(a.stats), zero_wire(b.stats));
    }
    ++i;
  }
}

TEST_F(BinfmtTest, DiameterEstimateParityTextVsMmapAcrossTransports) {
  const Graph built = test::make_family(test::Family::kGnmUniform, 140, 19);
  const std::string tp = path("diam.el");
  const std::string bp = path("diam.gcsr");
  write_exact_edge_list(built, tp);
  write_gcsr(built, bp);

  const Graph text = read_edge_list_file(tp, /*compact_ids=*/false);
  const MappedGraph m = open_mmap(bp);
  const Graph mapped = m.graph();

  for (const ParityConfig& c : parity_configs()) {
    SCOPED_TRACE(c.name);
    core::DiameterApproxOptions opts;
    opts.cluster.tau = 4;
    opts.cluster.seed = 5;
    opts.cluster.partition.num_partitions = c.partitions;
    opts.cluster.transport.kind = c.transport;
    opts.cluster.transport.processes = c.processes;
    const auto a = core::approximate_diameter(text, opts);
    const auto b = core::approximate_diameter(mapped, opts);
    EXPECT_EQ(a.estimate, b.estimate);
    EXPECT_EQ(a.estimate_classic, b.estimate_classic);
    EXPECT_EQ(a.quotient_diam, b.quotient_diam);
    EXPECT_EQ(a.radius, b.radius);
    EXPECT_EQ(a.num_clusters, b.num_clusters);
    EXPECT_EQ(a.clustering.center_of, b.clustering.center_of);
    EXPECT_EQ(zero_wire(a.stats), zero_wire(b.stats));
  }
}

// --- 3. corruption rejection ------------------------------------------------

/// One valid fixture shared by the negative tests: small graph, one sidecar.
Graph corruption_fixture(const std::string& p) {
  const Graph g = test::make_family(test::Family::kMeshUniform, 64, 13);
  write_gcsr(g, p, {.presplit_deltas = {0.1, 0.2}});
  return g;
}

TEST_F(BinfmtTest, RejectsTruncationAtEveryLayer) {
  const std::string p = path("trunc.gcsr");
  (void)corruption_fixture(p);
  const auto bytes = slurp(p);
  // Inside the header; inside the payloads (table unreachable); missing
  // final table-checksum word.
  for (const std::size_t cut :
       {std::size_t{0}, std::size_t{64}, std::size_t{127}, bytes.size() / 2,
        bytes.size() - 4}) {
    SCOPED_TRACE(cut);
    dump(p, {bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(cut)});
    EXPECT_EQ(open_code(p), BinfmtErrc::kTruncated);
  }
}

TEST_F(BinfmtTest, RejectsBadMagic) {
  const std::string p = path("magic.gcsr");
  (void)corruption_fixture(p);
  auto bytes = slurp(p);
  bytes[0] ^= 0xff;  // checked before any checksum: no re-stamp needed
  dump(p, bytes);
  EXPECT_EQ(open_code(p), BinfmtErrc::kBadMagic);
}

TEST_F(BinfmtTest, RejectsFutureVersion) {
  const std::string p = path("version.gcsr");
  (void)corruption_fixture(p);
  auto bytes = slurp(p);
  wr<std::uint32_t>(bytes, kVersionOff, kGcsrVersion + 1);
  // The version check runs before the header checksum by contract, so a
  // future-version file is reported as such even with a stale checksum…
  dump(p, bytes);
  EXPECT_EQ(open_code(p), BinfmtErrc::kBadVersion);
  // …and of course with a valid one.
  restamp_header(bytes);
  dump(p, bytes);
  EXPECT_EQ(open_code(p), BinfmtErrc::kBadVersion);
}

TEST_F(BinfmtTest, RejectsHeaderBitFlip) {
  const std::string p = path("header.gcsr");
  (void)corruption_fixture(p);
  auto bytes = slurp(p);
  wr<std::uint64_t>(bytes, kNumNodesOff,
                    rd<std::uint64_t>(bytes, kNumNodesOff) + 1);
  dump(p, bytes);  // no re-stamp: the header checksum must catch it
  EXPECT_EQ(open_code(p), BinfmtErrc::kBadHeader);
}

TEST_F(BinfmtTest, RejectsUnknownWeightKind) {
  const std::string p = path("wkind.gcsr");
  (void)corruption_fixture(p);
  auto bytes = slurp(p);
  wr<std::uint32_t>(bytes, kWeightKindOff, 7);
  restamp_header(bytes);
  dump(p, bytes);
  EXPECT_EQ(open_code(p), BinfmtErrc::kBadWeightKind);
}

TEST_F(BinfmtTest, RejectsPayloadBitFlip) {
  const std::string p = path("payload.gcsr");
  (void)corruption_fixture(p);
  auto bytes = slurp(p);
  // Flip one byte inside the targets payload (section table entry 1).
  const auto off = rd<std::uint64_t>(bytes, entry_at(bytes, 1) +
                                                kEntryOffsetOff);
  bytes[off] ^= 0x01;
  dump(p, bytes);
  EXPECT_EQ(open_code(p), BinfmtErrc::kChecksumMismatch);
  // verify_checksums=false skips the payload pass — but the fingerprint in
  // the header no longer matches what this section's stored checksum feeds
  // into, so nothing here silently succeeds; flipping a *weights* byte and
  // disabling verification is the documented trust tradeoff.
  EXPECT_EQ(open_code(p, {.verify_checksums = false}), std::nullopt);
}

TEST_F(BinfmtTest, RejectsTableBitFlip) {
  const std::string p = path("table.gcsr");
  (void)corruption_fixture(p);
  auto bytes = slurp(p);
  const std::size_t e1 = entry_at(bytes, 1);
  wr<std::uint64_t>(bytes, e1 + kEntryChecksumOff,
                    rd<std::uint64_t>(bytes, e1 + kEntryChecksumOff) ^ 1);
  dump(p, bytes);  // table checksum not re-stamped: it must catch this
  EXPECT_EQ(open_code(p), BinfmtErrc::kChecksumMismatch);
}

TEST_F(BinfmtTest, RejectsMisalignedSection) {
  const std::string p = path("align.gcsr");
  (void)corruption_fixture(p);
  auto bytes = slurp(p);
  const std::size_t e1 = entry_at(bytes, 1);
  wr<std::uint64_t>(bytes, e1 + kEntryOffsetOff,
                    rd<std::uint64_t>(bytes, e1 + kEntryOffsetOff) + 8);
  restamp_table(bytes);  // past the table check, onto the alignment check
  dump(p, bytes);
  EXPECT_EQ(open_code(p), BinfmtErrc::kMisalignedSection);
}

TEST_F(BinfmtTest, RejectsWrongSectionKindAndLength) {
  const std::string p = path("kind.gcsr");
  (void)corruption_fixture(p);
  const auto pristine = slurp(p);

  auto bytes = pristine;
  wr<std::uint32_t>(bytes, entry_at(bytes, 0) + kEntryKindOff, 9);
  restamp_table(bytes);
  dump(p, bytes);
  EXPECT_EQ(open_code(p), BinfmtErrc::kBadSection);

  bytes = pristine;
  const std::size_t e2 = entry_at(bytes, 2);
  wr<std::uint64_t>(bytes, e2 + kEntryLengthOff,
                    rd<std::uint64_t>(bytes, e2 + kEntryLengthOff) - 8);
  restamp_table(bytes);
  dump(p, bytes);
  EXPECT_EQ(open_code(p), BinfmtErrc::kBadSection);
}

TEST_F(BinfmtTest, CorruptSidecarIsRejectedWithoutPartialAdoption) {
  const std::string p = path("sidecar.gcsr");
  (void)corruption_fixture(p);  // sidecars for Δ = 0.1 and Δ = 0.2
  auto bytes = slurp(p);

  // Sections: 0–2 graph CSR, 3–5 the Δ=0.1 triple, 6–8 the Δ=0.2 triple.
  // Poison the Δ=0.2 split array with an out-of-bounds offset and re-stamp
  // its checksum: the file validates clean at open, the semantic bounds
  // check at load time is the last line of defense.
  const std::size_t e6 = entry_at(bytes, 6);
  const auto off = rd<std::uint64_t>(bytes, e6 + kEntryOffsetOff);
  const auto len = rd<std::uint64_t>(bytes, e6 + kEntryLengthOff);
  wr<std::uint64_t>(bytes, off, ~std::uint64_t{0});
  wr<std::uint64_t>(bytes, e6 + kEntryChecksumOff,
                    gcsr_checksum(bytes.data() + off, len));
  restamp_table(bytes);
  dump(p, bytes);

  const MappedGraph m = open_mmap(p);  // full checksum pass is clean
  const Graph g = m.graph();
  CsrSplit out;
  ASSERT_TRUE(m.load_presplit(0.1, out));  // the intact sidecar still loads
  try {
    (void)m.load_presplit(0.2, out);
    FAIL() << "out-of-bounds sidecar loaded";
  } catch (const BinfmtError& e) {
    EXPECT_EQ(e.code(), BinfmtErrc::kBadPresplit);
  }

  // All-or-nothing adoption: the good Δ=0.1 layout must NOT be committed
  // when the Δ=0.2 one throws.
  exec::Context ctx;
  EXPECT_THROW((void)ctx.adopt_presplits(g, m), BinfmtError);
  EXPECT_FALSE(ctx.has_split(g, 0.1));
  EXPECT_FALSE(ctx.has_split(g, 0.2));
}

TEST_F(BinfmtTest, WriteFaultsSurfaceAsTypedIoErrors) {
  const Graph g = test::make_family(test::Family::kMeshUniform, 64, 13);
  const std::string p = path("fault.gcsr");

  util::fault::arm("io.write=errno:5@2");
  try {
    write_gcsr(g, p);
    FAIL() << "armed errno fault did not fail the write";
  } catch (const BinfmtError& e) {
    EXPECT_EQ(e.code(), BinfmtErrc::kIoError);
  }
  EXPECT_EQ(util::fault::fired("io.write"), 1u);
  util::fault::disarm();

  // A short write tears the file mid-section; the torn prefix on disk must
  // be rejected by open_mmap, never parsed into a half-valid graph.
  util::fault::arm("io.write=short@2");
  EXPECT_THROW(write_gcsr(g, p), BinfmtError);
  util::fault::disarm();
  const auto code = open_code(p);
  ASSERT_TRUE(code.has_value()) << "torn file opened successfully";
  EXPECT_EQ(*code, BinfmtErrc::kTruncated);

  // With faults disarmed the same write succeeds and round-trips.
  write_gcsr(g, p);
  EXPECT_TRUE(same_csr(g, open_mmap(p).graph()));
}

TEST_F(BinfmtTest, ErrorCodesHaveStableNames) {
  EXPECT_STREQ(to_string(BinfmtErrc::kBadMagic), "bad_magic");
  EXPECT_STREQ(to_string(BinfmtErrc::kChecksumMismatch), "checksum_mismatch");
  // what() carries the path for log-grepping.
  const std::string p = path("absent.gcsr");
  try {
    (void)open_mmap(p);
    FAIL() << "opened a nonexistent file";
  } catch (const BinfmtError& e) {
    EXPECT_NE(std::string(e.what()).find(p), std::string::npos);
  }
}

}  // namespace
}  // namespace gdiam::io
