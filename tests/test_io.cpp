// Tests for graph/io.hpp: DIMACS, edge-list and binary formats, including
// malformed-input handling and round trips on generated graphs.

#include <gtest/gtest.h>

#include <sstream>

#include "gen/weights.hpp"
#include "graph/io.hpp"
#include "graph/ops.hpp"
#include "test_helpers.hpp"

namespace gdiam::io {
namespace {

bool graphs_equal(const Graph& a, const Graph& b, double tol = 0.0) {
  if (a.num_nodes() != b.num_nodes() || a.num_edges() != b.num_edges()) {
    return false;
  }
  for (NodeId u = 0; u < a.num_nodes(); ++u) {
    const auto an = a.neighbors(u), bn = b.neighbors(u);
    const auto aw = a.weights(u), bw = b.weights(u);
    if (an.size() != bn.size()) return false;
    for (std::size_t i = 0; i < an.size(); ++i) {
      if (an[i] != bn[i]) return false;
      if (std::abs(aw[i] - bw[i]) > tol) return false;
    }
  }
  return true;
}

TEST(Dimacs, ParsesSmallInstance) {
  std::istringstream in(
      "c example\n"
      "p sp 3 4\n"
      "a 1 2 5\n"
      "a 2 1 5\n"
      "a 2 3 7\n"
      "a 3 2 7\n");
  const Graph g = read_dimacs(in);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(edge_weight(g, 0, 1), 5.0);
  EXPECT_DOUBLE_EQ(edge_weight(g, 1, 2), 7.0);
}

TEST(Dimacs, IgnoresSelfLoopArcs) {
  std::istringstream in("p sp 2 2\na 1 1 3\na 1 2 4\n");
  const Graph g = read_dimacs(in);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Dimacs, MissingHeaderThrows) {
  std::istringstream in("a 1 2 3\n");
  EXPECT_THROW((void)read_dimacs(in), std::runtime_error);
}

TEST(Dimacs, BadNodeIdThrows) {
  std::istringstream in("p sp 2 1\na 1 5 3\n");
  EXPECT_THROW((void)read_dimacs(in), std::runtime_error);
}

TEST(Dimacs, UnknownTagThrows) {
  std::istringstream in("p sp 2 1\nz nonsense\n");
  EXPECT_THROW((void)read_dimacs(in), std::runtime_error);
}

TEST(Dimacs, RoundTripIntegerWeights) {
  const Graph g = gen::uniform_int_weights(
      test::make_family(test::Family::kGnmUniform, 60, 7), 1, 1000, 7);
  std::stringstream s;
  write_dimacs(g, s);
  const Graph h = read_dimacs(s);
  EXPECT_TRUE(graphs_equal(g, h));
}

TEST(EdgeList, ParsesWithAndWithoutWeights) {
  std::istringstream in(
      "# comment\n"
      "0 1 2.5\n"
      "1 2\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_DOUBLE_EQ(edge_weight(g, 0, 1), 2.5);
  EXPECT_DOUBLE_EQ(edge_weight(g, 1, 2), 1.0);
}

TEST(EdgeList, CompactsSparseIds) {
  std::istringstream in("1000000 2000000\n2000000 3000000\n");
  const Graph g = read_edge_list(in, /*compact_ids=*/true);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(EdgeList, LiteralIdsWhenNotCompacting) {
  std::istringstream in("0 5\n");
  const Graph g = read_edge_list(in, /*compact_ids=*/false);
  EXPECT_EQ(g.num_nodes(), 6u);
}

TEST(EdgeList, SymmetrizesDirectedDuplicates) {
  // Directed pair (u,v) and (v,u): one undirected edge (min weight).
  std::istringstream in("0 1 4\n1 0 2\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(edge_weight(g, 0, 1), 2.0);
}

TEST(EdgeList, MalformedLineThrows) {
  std::istringstream in("zero one\n");
  EXPECT_THROW((void)read_edge_list(in), std::runtime_error);
}

TEST(EdgeList, RoundTrip) {
  const Graph g = test::make_family(test::Family::kTreePlusChords, 80, 9);
  std::stringstream s;
  write_edge_list(g, s);
  const Graph h = read_edge_list(s);
  // write_edge_list emits nodes in id order, so compaction preserves ids for
  // connected graphs whose node 0 has an edge; compare structure only.
  EXPECT_EQ(h.num_edges(), g.num_edges());
}

TEST(Binary, RoundTripExact) {
  const Graph g = gen::uniform_weights(
      test::make_family(test::Family::kMeshUniform, 100, 11), 11);
  std::stringstream s(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(g, s);
  const Graph h = read_binary(s);
  EXPECT_TRUE(graphs_equal(g, h));
}

TEST(Binary, BadMagicThrows) {
  std::stringstream s(std::ios::in | std::ios::out | std::ios::binary);
  s << "NOPE furthermore";
  EXPECT_THROW((void)read_binary(s), std::runtime_error);
}

TEST(Binary, TruncatedStreamThrows) {
  const Graph g = gen::unit_weights(test::make_family(
      test::Family::kGnmUniform, 30, 13));
  std::stringstream s(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(g, s);
  const std::string full = s.str();
  std::stringstream cut(full.substr(0, full.size() / 2),
                        std::ios::in | std::ios::binary);
  EXPECT_THROW((void)read_binary(cut), std::runtime_error);
}

TEST(Files, BinaryFileRoundTrip) {
  const Graph g = test::make_family(test::Family::kGnmUniform, 40, 17);
  const std::string path = testing::TempDir() + "/gdiam_io_test.bin";
  write_binary_file(g, path);
  const Graph h = read_binary_file(path);
  EXPECT_TRUE(graphs_equal(g, h));
}

TEST(Files, MissingFileThrows) {
  EXPECT_THROW((void)read_binary_file("/nonexistent/gdiam.bin"),
               std::runtime_error);
  EXPECT_THROW((void)read_dimacs_file("/nonexistent/gdiam.gr"),
               std::runtime_error);
}

}  // namespace
}  // namespace gdiam::io
