// Split-CSR layout (graph/split_csr.hpp): structural invariants of the
// light-first reorder, and bit-exact parity of the presplit kernels against
// the branch-filter baseline — distances, labels and every RoundStats
// counter, on every graph family, flat and partitioned (K ∈ {1, 2, 7}).

#include "graph/split_csr.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "core/cluster.hpp"
#include "core/growing.hpp"
#include "mr/partition.hpp"
#include "sssp/delta_stepping.hpp"
#include "test_helpers.hpp"

namespace gdiam {
namespace {

using test::Family;

// ---------------------------------------------------------------------------
// Structural invariants of the reorder itself.

class SplitInvariants : public testing::TestWithParam<Family> {};

TEST_P(SplitInvariants, SegmentsPartitionAdjacency) {
  const Graph g = test::make_family(GetParam(), 180, 42);
  for (const Weight delta :
       {0.0, g.min_weight(), g.avg_weight(), g.max_weight(),
        2.0 * g.max_weight()}) {
    const SplitCsr split(g, delta);
    ASSERT_TRUE(split.validate()) << "delta=" << delta;
    EXPECT_EQ(split.delta(), delta);

    EdgeIndex light_total = 0;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      // Split offset stays inside the node's segment; since offsets are
      // nondecreasing this also makes the split array monotone.
      EXPECT_GE(split.split_at(u), g.offsets()[u]);
      EXPECT_LE(split.split_at(u), g.offsets()[u + 1]);
      if (u > 0) {
        EXPECT_GE(split.split_at(u), split.split_at(u - 1));
      }
      EXPECT_EQ(split.light_degree(u) + split.heavy_degree(u), g.degree(u));

      // Class purity and consistent (target, weight) pairing: each light
      // weight is ≤ delta, each heavy one > delta, and the segments together
      // are a permutation of the original adjacency (validate() checks the
      // stable order; here we re-check the multiset by sorted compare).
      const auto lw = split.light_weights(u);
      for (const Weight w : lw) EXPECT_LE(w, delta);
      const auto hw = split.heavy_weights(u);
      for (const Weight w : hw) EXPECT_GT(w, delta);
      light_total += split.light_degree(u);

      std::vector<std::pair<NodeId, Weight>> original, permuted;
      const auto nbr = g.neighbors(u);
      const auto wts = g.weights(u);
      for (std::size_t i = 0; i < nbr.size(); ++i) {
        original.emplace_back(nbr[i], wts[i]);
      }
      const auto ln = split.light_neighbors(u);
      const auto hn = split.heavy_neighbors(u);
      for (std::size_t i = 0; i < ln.size(); ++i) {
        permuted.emplace_back(ln[i], lw[i]);
      }
      for (std::size_t i = 0; i < hn.size(); ++i) {
        permuted.emplace_back(hn[i], hw[i]);
      }
      std::sort(original.begin(), original.end());
      std::sort(permuted.begin(), permuted.end());
      EXPECT_EQ(original, permuted) << "node " << u << " delta " << delta;
    }
    // Extreme deltas degenerate to "everything heavy" / "everything light".
    if (delta == 0.0) {
      EXPECT_EQ(light_total, 0u);
    }
    if (delta >= g.max_weight()) {
      EXPECT_EQ(light_total, g.num_directed_edges());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, SplitInvariants,
                         testing::ValuesIn(test::all_families()),
                         [](const auto& info) {
                           return test::family_name(info.param);
                         });

TEST(SplitCsrBasics, EmptyAndEdgelessGraphs) {
  const SplitCsr empty;
  EXPECT_TRUE(empty.empty());

  const Graph g = build_graph(5, {});  // nodes, no edges
  const SplitCsr split(g, 1.0);
  EXPECT_FALSE(split.empty());
  EXPECT_TRUE(split.validate());
  for (NodeId u = 0; u < 5; ++u) {
    EXPECT_EQ(split.light_degree(u), 0u);
    EXPECT_EQ(split.heavy_degree(u), 0u);
  }
}

TEST(SplitCsrBasics, PresplitCsrMatchesShardArrays) {
  // presplit_csr applied to a Partition shard keeps the same per-node
  // segment boundaries (the shard's offsets) and only permutes within them.
  const Graph g = test::make_family(Family::kGnmUniform, 120, 7);
  const mr::Partition part(
      g, {.num_partitions = 3, .strategy = mr::PartitionStrategy::kHash});
  const Weight delta = g.avg_weight();
  for (const mr::Shard& sh : part.shards()) {
    const CsrSplit ss = presplit_csr(sh.offsets, sh.targets, sh.weights, delta);
    ASSERT_EQ(ss.split.size(), sh.num_owned);
    ASSERT_EQ(ss.targets.size(), sh.targets.size());
    for (NodeId l = 0; l < sh.num_owned; ++l) {
      EXPECT_GE(ss.split[l], sh.offsets[l]);
      EXPECT_LE(ss.split[l], sh.offsets[l + 1]);
      for (EdgeIndex i = sh.offsets[l]; i < sh.offsets[l + 1]; ++i) {
        EXPECT_EQ(ss.weights[i] <= delta, i < ss.split[l]);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Δ-stepping parity: presplit on vs off must agree bit-for-bit on distances
// and on every counter, for the flat kernel and all partitioned shard counts.

class DeltaSteppingSplitParity
    : public testing::TestWithParam<std::tuple<Family, std::uint32_t>> {};

TEST_P(DeltaSteppingSplitParity, BitIdenticalToBranchFilter) {
  const auto [family, k] = GetParam();
  const Graph g = test::make_family(family, 200, 23);
  for (const double mult : {0.5, 1.0, 8.0}) {
    sssp::DeltaSteppingOptions branch;
    branch.presplit = false;
    branch.delta = mult * g.avg_weight();
    branch.partition = {.num_partitions = k,
                        .strategy = mr::PartitionStrategy::kHash};
    sssp::DeltaSteppingOptions presplit = branch;
    presplit.presplit = true;

    const auto a = sssp::delta_stepping(g, 3, branch);
    const auto b = sssp::delta_stepping(g, 3, presplit);
    EXPECT_EQ(a.dist, b.dist) << "mult=" << mult;
    EXPECT_EQ(a.eccentricity, b.eccentricity);
    EXPECT_EQ(a.farthest, b.farthest);
    EXPECT_EQ(a.delta_used, b.delta_used);
    EXPECT_EQ(a.buckets_processed, b.buckets_processed);
    EXPECT_EQ(a.stats, b.stats) << "mult=" << mult;  // every counter
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamiliesAllShards, DeltaSteppingSplitParity,
    testing::Combine(testing::ValuesIn(test::all_families()),
                     testing::Values(1u, 2u, 7u)),
    [](const auto& info) {
      return std::string(test::family_name(std::get<0>(info.param))) + "_k" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Δ-growing parity: per-step labels and counters, for each policy.

core::GrowingStepParams uniform_params(Weight delta) {
  core::GrowingStepParams p;
  p.light_threshold = delta;
  p.uniform_budget = delta;
  return p;
}

class GrowingSplitParity
    : public testing::TestWithParam<std::tuple<Family, std::uint32_t>> {};

TEST_P(GrowingSplitParity, StepsBitIdenticalToBranchFilter) {
  const auto [family, k] = GetParam();
  const Graph g = test::make_family(family, 200, 55);
  const core::GrowingStepParams p = uniform_params(2.0 * g.avg_weight());

  const mr::PartitionOptions popts{.num_partitions = k,
                                   .strategy = mr::PartitionStrategy::kHash};
  // One engine pair per policy; K only matters for kPartitioned.
  for (const auto policy :
       {core::GrowingPolicy::kPush, core::GrowingPolicy::kPull,
        core::GrowingPolicy::kPartitioned}) {
    core::GrowingEngine branch(g, policy, popts);
    core::GrowingEngine split(g, policy, popts);
    branch.set_presplit(false);
    ASSERT_TRUE(split.presplit());
    for (core::GrowingEngine* e : {&branch, &split}) {
      e->set_source(0, 0);
      e->set_source(g.num_nodes() / 3, g.num_nodes() / 3);
      e->block(2);
      e->set_source(2, 2);
      e->rebuild_frontier(p);
    }
    for (int step = 0; step < 64; ++step) {
      const auto ra = branch.step(p);
      const auto rb = split.step(p);
      ASSERT_EQ(ra.messages, rb.messages)
          << "policy " << static_cast<int>(policy) << " step " << step;
      ASSERT_EQ(ra.updates, rb.updates);
      ASSERT_EQ(ra.newly_labeled, rb.newly_labeled);
      ASSERT_EQ(ra.cross_messages, rb.cross_messages);
      ASSERT_EQ(ra.cross_bytes, rb.cross_bytes);
      ASSERT_EQ(branch.labels(), split.labels());
      if (ra.updates == 0) break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndShards, GrowingSplitParity,
    testing::Combine(testing::Values(Family::kMeshUniform, Family::kRmatGiant,
                                     Family::kPathHeavyTail),
                     testing::Values(1u, 2u, 7u)),
    [](const auto& info) {
      return std::string(test::family_name(std::get<0>(info.param))) + "_k" +
             std::to_string(std::get<1>(info.param));
    });

// Raising the threshold mid-run (a CLUSTER stage bump) must rebuild the
// cached split and stay in lockstep with the branch path.
TEST(GrowingSplitCache, ThresholdChangeRebuildsSplit) {
  const Graph g = test::make_family(Family::kGnmUniform, 150, 13);
  core::GrowingEngine branch(g, core::GrowingPolicy::kPush);
  core::GrowingEngine split(g, core::GrowingPolicy::kPush);
  branch.set_presplit(false);
  for (core::GrowingEngine* e : {&branch, &split}) {
    e->set_source(0, 0);
  }
  for (const double mult : {1.0, 2.0, 4.0}) {
    const core::GrowingStepParams p = uniform_params(mult * g.avg_weight());
    branch.rebuild_frontier(p);
    split.rebuild_frontier(p);
    for (int step = 0; step < 32; ++step) {
      const auto ra = branch.step(p);
      const auto rb = split.step(p);
      ASSERT_EQ(ra.messages, rb.messages) << "mult " << mult;
      ASSERT_EQ(ra.updates, rb.updates);
      ASSERT_EQ(branch.labels(), split.labels());
      if (ra.updates == 0) break;
    }
  }
}

// Whole-algorithm sanity: CLUSTER with the default presplit engines ends in
// a valid clustering (the step-level parity above covers the counters).
TEST(GrowingSplitCache, ClusterRunsOnPresplitEngines) {
  const Graph g = test::make_family(Family::kMeshUniform, 250, 3);
  core::ClusterOptions opts;
  opts.tau = 4;
  opts.seed = 17;
  opts.stop_factor = 2.0;
  const core::Clustering c = core::cluster(g, opts);
  EXPECT_TRUE(c.validate(g));
}

}  // namespace
}  // namespace gdiam
