// Tests for the NUMA topology/placement layer (util/topology.hpp,
// mr/placement.hpp, DESIGN.md §13): GDIAM_TOPOLOGY spec parsing (malformed
// specs rejected, never silently fallen back from), plan determinism and the
// strategy shapes, the Launcher's placement-ordered grouping, the Exchange's
// cross-node traffic classification, the exec::Context placement-keyed
// layout caches — and the load-bearing part: bit-identical results and
// model-level counters across placements for every graph family,
// K ∈ {1, 2, 7} and every transport, on emulated single- and two-node
// machines. Placement moves memory and threads, never answers.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "exec/context.hpp"
#include "mr/exchange.hpp"
#include "mr/placement.hpp"
#include "mr/transport.hpp"
#include "sssp/delta_stepping.hpp"
#include "util/topology.hpp"
#include "test_helpers.hpp"

namespace gdiam {
namespace {

using test::Family;
namespace topo = util::topo;

/// Sets GDIAM_TOPOLOGY for one scope; restores the unset default on exit so
/// tests can't leak an emulated machine into each other.
struct ScopedTopology {
  explicit ScopedTopology(const char* spec) {
    EXPECT_EQ(::setenv("GDIAM_TOPOLOGY", spec, 1), 0);
  }
  ~ScopedTopology() { ::unsetenv("GDIAM_TOPOLOGY"); }
};

mr::PlacementOptions rr() {
  return {.strategy = mr::PlacementStrategy::kRoundRobin};
}
mr::PlacementOptions cap() {
  return {.strategy = mr::PlacementStrategy::kCapacity};
}

// ---------------------------------------------------------------------------
// Spec parsing

TEST(Topology, ParsesSpecShapes) {
  const topo::Topology two = topo::parse_spec("0-3;4-7");
  ASSERT_EQ(two.num_nodes(), 2u);
  EXPECT_EQ(two.cpus(0), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(two.cpus(1), (std::vector<int>{4, 5, 6, 7}));
  EXPECT_EQ(two.total_cpus(), 8u);
  EXPECT_FALSE(two.single_node());

  const topo::Topology interleaved = topo::parse_spec("0,2,4-6;1,3,7");
  ASSERT_EQ(interleaved.num_nodes(), 2u);
  EXPECT_EQ(interleaved.cpus(0), (std::vector<int>{0, 2, 4, 5, 6}));
  EXPECT_EQ(interleaved.cpus(1), (std::vector<int>{1, 3, 7}));

  const topo::Topology one = topo::parse_spec("0");
  EXPECT_TRUE(one.single_node());
  EXPECT_EQ(one.total_cpus(), 1u);
}

TEST(Topology, RejectsMalformedSpecs) {
  // Empty spec/node, junk, inverted ranges, duplicates (within a node and
  // across nodes): every one throws rather than silently serving a plan for
  // a machine the operator didn't describe.
  for (const char* bad : {"", ";", "0;", ";1", "0;;1", "a", "0-", "-3", "3-1",
                          "0,0", "0-2;2", "1;1", "0, 1", "0-1-2"}) {
    EXPECT_THROW(topo::parse_spec(bad), std::invalid_argument)
        << "spec: \"" << bad << "\"";
  }
}

TEST(Topology, DiscoverHonorsEnvOverrideAndSystemFallback) {
  {
    const ScopedTopology t("0;1");
    const topo::Topology d = topo::discover();
    EXPECT_EQ(d.num_nodes(), 2u);
  }
  // Without the override: whatever the machine really is — at least one
  // node with at least one CPU.
  const topo::Topology sys = topo::discover();
  EXPECT_GE(sys.num_nodes(), 1u);
  EXPECT_GE(sys.total_cpus(), 1u);
}

TEST(Topology, MalformedEnvSpecThrowsInsteadOfFallingBack) {
  const ScopedTopology t("not a topology");
  EXPECT_THROW(topo::discover(), std::invalid_argument);
}

TEST(Topology, FingerprintIsStructural) {
  const auto fp = [](const char* s) { return topo::parse_spec(s).fingerprint(); };
  EXPECT_EQ(fp("0-3;4-7"), fp("0,1,2,3;4-7"));  // same structure, same hash
  EXPECT_NE(fp("0-3;4-7"), fp("0-7"));          // node split matters
  EXPECT_NE(fp("0;1"), fp("1;0"));              // per-node membership matters
  EXPECT_NE(fp("0"), 0u);                       // never the inactive sentinel
}

TEST(Topology, BindAndFirstTouchAreBestEffort) {
  // Emulated CPUs that don't exist on this machine: the bind must degrade to
  // a no-op (false), never throw or fail the run.
  EXPECT_FALSE(topo::bind_current_thread({4096, 4097}));
  EXPECT_FALSE(topo::bind_current_thread({}));
  {
    const topo::ScopedAffinity a(std::vector<int>{4096});
    EXPECT_FALSE(a.bound());
  }
  std::vector<std::byte> page(1 << 16);
  topo::first_touch(page.data(), page.size());  // must not crash
  topo::first_touch(nullptr, 0);
}

// ---------------------------------------------------------------------------
// PlacementPlan

TEST(Placement, ParseStrategyNames) {
  EXPECT_EQ(mr::parse_placement_strategy("none"),
            mr::PlacementStrategy::kNone);
  EXPECT_EQ(mr::parse_placement_strategy("round-robin"),
            mr::PlacementStrategy::kRoundRobin);
  EXPECT_EQ(mr::parse_placement_strategy("capacity"),
            mr::PlacementStrategy::kCapacity);
  EXPECT_FALSE(mr::parse_placement_strategy("numa").has_value());
}

TEST(Placement, NoneAndDefaultPlansAreInactive) {
  const mr::PlacementPlan none;
  EXPECT_FALSE(none.active());
  EXPECT_EQ(none.fingerprint(), 0u);
  EXPECT_EQ(none.node_of(3), 0u);
  EXPECT_TRUE(none.cpus_of_node(0).empty());

  const mr::PlacementPlan off = mr::PlacementPlan::make(
      topo::parse_spec("0;1"), 4, mr::PlacementStrategy::kNone);
  EXPECT_FALSE(off.active());
  EXPECT_EQ(off.fingerprint(), 0u);
}

TEST(Placement, RoundRobinInterleavesAndIsDeterministic) {
  const topo::Topology t = topo::parse_spec("0-1;2-3");
  const auto plan =
      mr::PlacementPlan::make(t, 7, mr::PlacementStrategy::kRoundRobin);
  ASSERT_TRUE(plan.active());
  EXPECT_EQ(plan.num_nodes(), 2u);
  for (mr::ShardId s = 0; s < 7; ++s) EXPECT_EQ(plan.node_of(s), s % 2);
  // Pure function of (topology, K, strategy): rebuilt plans are equal.
  const auto again =
      mr::PlacementPlan::make(t, 7, mr::PlacementStrategy::kRoundRobin);
  EXPECT_EQ(plan, again);
  EXPECT_NE(plan.fingerprint(), 0u);
  EXPECT_EQ(plan.fingerprint(), again.fingerprint());
  // K and strategy both feed the fingerprint.
  EXPECT_NE(plan.fingerprint(),
            mr::PlacementPlan::make(t, 6, mr::PlacementStrategy::kRoundRobin)
                .fingerprint());
  EXPECT_NE(plan.fingerprint(),
            mr::PlacementPlan::make(t, 7, mr::PlacementStrategy::kCapacity)
                .fingerprint());
}

TEST(Placement, CapacityBalancesByCpuCount) {
  // Node 0 has 1 CPU, node 1 has 3: of 8 shards, capacity gives node 1
  // three times the load (2 vs 6), where round-robin would split 4/4.
  const topo::Topology t = topo::parse_spec("0;1-3");
  const auto plan =
      mr::PlacementPlan::make(t, 8, mr::PlacementStrategy::kCapacity);
  std::uint32_t on0 = 0, on1 = 0;
  for (mr::ShardId s = 0; s < 8; ++s) {
    (plan.node_of(s) == 0 ? on0 : on1)++;
  }
  EXPECT_EQ(on0, 2u);
  EXPECT_EQ(on1, 6u);
}

TEST(Placement, ResolveShortCircuitsNoneWithoutDiscovery) {
  // A malformed env spec would throw on discovery; kNone must not discover.
  const ScopedTopology t("garbage");
  const mr::PlacementPlan plan = mr::resolve_placement({}, 4);
  EXPECT_FALSE(plan.active());
  EXPECT_EQ(mr::placement_fingerprint({}), 0u);
  EXPECT_THROW(mr::resolve_placement(rr(), 4), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Launcher: placement-ordered grouping (the cheap local path)

TEST(Placement, LauncherGroupsSameNodeShardsTogether) {
  const ScopedTopology t("0;1");
  // Round-robin K=4 on 2 nodes: node 0 owns {0,2}, node 1 owns {1,3}. With
  // P=2 the groups must align with the nodes, not with shard-id ranges.
  const mr::PlacementPlan plan = mr::resolve_placement(rr(), 4);
  const mr::Launcher l(4, 2, plan);
  const auto g0 = l.shards_of(0);
  const auto g1 = l.shards_of(1);
  EXPECT_EQ(std::vector<mr::ShardId>(g0.begin(), g0.end()),
            (std::vector<mr::ShardId>{0, 2}));
  EXPECT_EQ(std::vector<mr::ShardId>(g1.begin(), g1.end()),
            (std::vector<mr::ShardId>{1, 3}));
  EXPECT_EQ(l.node_of_group(0), 0);
  EXPECT_EQ(l.node_of_group(1), 1);
  EXPECT_EQ(l.process_of(0), 0u);
  EXPECT_EQ(l.process_of(2), 0u);
  EXPECT_EQ(l.process_of(1), 1u);
  EXPECT_EQ(l.process_of(3), 1u);
  EXPECT_EQ(l.cpus_of_group(0), (std::vector<int>{0}));
  EXPECT_EQ(l.cpus_of_group(1), (std::vector<int>{1}));
}

TEST(Placement, LauncherWithoutPlanKeepsIdentityOrder) {
  const mr::Launcher l(5, 2);
  const auto g0 = l.shards_of(0);
  EXPECT_EQ(std::vector<mr::ShardId>(g0.begin(), g0.end()),
            (std::vector<mr::ShardId>{0, 1, 2}));
  EXPECT_EQ(l.node_of_group(0), -1);
  EXPECT_TRUE(l.cpus_of_group(0).empty());
}

TEST(Placement, LauncherMixedNodeGroupReportsUnion) {
  const ScopedTopology t("0;1");
  // K=3 shards on 2 nodes with P=1: the single group straddles both nodes.
  const mr::Launcher l(3, 1, mr::resolve_placement(rr(), 3));
  EXPECT_EQ(l.node_of_group(0), -1);
  EXPECT_EQ(l.cpus_of_group(0), (std::vector<int>{0, 1}));
}

// ---------------------------------------------------------------------------
// Exchange: cross-node classification

TEST(Placement, ExchangeClassifiesCrossNodeTraffic) {
  mr::Exchange<int> ex(3);
  ex.set_node_map({0, 1, 0});  // shards 0 and 2 on node 0, shard 1 on node 1
  ex.send(0, 2, 1);            // cross-shard, same node
  ex.send(0, 1, 2);            // cross-shard, cross-node
  ex.send(1, 1, 3);            // shard-internal: never cross anything
  const mr::ExchangeCounters c = ex.seal();
  EXPECT_EQ(c.cross_messages, 2u);
  EXPECT_EQ(c.cross_node_messages, 1u);
  EXPECT_EQ(c.cross_node_bytes, sizeof(int));

  // Without a map (the pre-placement default) the counters stay zero.
  mr::Exchange<int> plain(3);
  plain.send(0, 1, 2);
  EXPECT_EQ(plain.seal().cross_node_messages, 0u);

  // resize() drops a stale map rather than misindexing the new shards.
  ex.clear();
  ex.resize(2);
  ex.send(0, 1, 4);
  EXPECT_EQ(ex.seal().cross_node_messages, 0u);
}

// ---------------------------------------------------------------------------
// exec::Context: placement participates in every layout-cache key

TEST(Placement, ContextCachesKeyOnPlacement) {
  const Graph g = test::make_family(Family::kGnmUniform, 120, 7);
  const mr::PartitionOptions popts{.num_partitions = 4,
                                   .strategy = mr::PartitionStrategy::kHash};
  const ScopedTopology t("0;1");
  exec::Context ctx;

  const SplitCsr* flat_none = &ctx.split_for(g, 1.0);
  const std::vector<CsrSplit>* shards_none =
      &ctx.shard_splits_for(g, popts, 1.0);

  // Turning placement on must miss: the cached arrays were first-touched
  // under the old (absent) plan.
  ctx.options().placement = rr();
  const SplitCsr* flat_rr = &ctx.split_for(g, 1.0);
  const std::vector<CsrSplit>* shards_rr =
      &ctx.shard_splits_for(g, popts, 1.0);
  EXPECT_NE(flat_rr, flat_none);
  EXPECT_NE(shards_rr, shards_none);

  // Same placement again: hit (the entries are keyed, not invalidated).
  EXPECT_EQ(&ctx.split_for(g, 1.0), flat_rr);
  EXPECT_EQ(&ctx.shard_splits_for(g, popts, 1.0), shards_rr);

  // And switching back recovers the original entries.
  ctx.options().placement = {};
  EXPECT_EQ(&ctx.split_for(g, 1.0), flat_none);
  EXPECT_EQ(&ctx.shard_splits_for(g, popts, 1.0), shards_none);
}

TEST(Placement, ContextCachesKeyOnTopologyChange) {
  // Same strategy, different emulated machine: GDIAM_TOPOLOGY feeds the
  // fingerprint, so the one-node and two-node layouts never alias.
  const Graph g = test::make_family(Family::kGnmUniform, 120, 7);
  exec::Context ctx;
  ctx.options().placement = rr();
  const SplitCsr* one;
  {
    const ScopedTopology t("0");
    one = &ctx.split_for(g, 1.0);
  }
  {
    const ScopedTopology t("0;1");
    EXPECT_NE(&ctx.split_for(g, 1.0), one);
  }
}

// ---------------------------------------------------------------------------
// Bit-identity across placements: the tentpole's correctness contract

/// The placement-invariant view of a RoundStats: wire counters are
/// transport-dependent and cross_node counters placement-dependent by
/// design; everything else must match bit-for-bit.
mr::RoundStats invariant(mr::RoundStats s) {
  s.wire_messages = 0;
  s.wire_bytes = 0;
  s.cross_node_messages = 0;
  s.cross_node_bytes = 0;
  return s;
}

class PlacementParity : public testing::TestWithParam<Family> {};

TEST_P(PlacementParity, SsspBitIdenticalAcrossPlacementsAndTransports) {
  const Graph g = test::make_family(GetParam(), 150, 42);

  for (const std::uint32_t k : {1u, 2u, 7u}) {
    sssp::DeltaSteppingOptions opts;
    opts.partition.num_partitions = k;
    const sssp::DeltaSteppingResult base = sssp::delta_stepping(g, 0, opts);
    EXPECT_EQ(base.stats.cross_node_messages, 0u);  // placement off

    const ScopedTopology t("0;1");
    for (const mr::PlacementOptions& pl : {rr(), cap()}) {
      opts.placement = pl;
      // The multi-process transports only exist behind K > 1 (the flat
      // kernel ignores transport and placement alike).
      std::vector<mr::TransportOptions> transports = {{}};
      if (k > 1) {
        transports.push_back(
            {.kind = mr::TransportKind::kProcess, .processes = 2});
        transports.push_back(
            {.kind = mr::TransportKind::kPool, .processes = 2});
      }
      for (const mr::TransportOptions& tr : transports) {
        opts.transport = tr;
        const sssp::DeltaSteppingResult run = sssp::delta_stepping(g, 0, opts);
        const std::string label =
            std::string(test::family_name(GetParam())) + " k=" +
            std::to_string(k) + " placement=" + to_string(pl.strategy);
        EXPECT_EQ(run.dist, base.dist) << label;
        EXPECT_EQ(run.eccentricity, base.eccentricity) << label;
        EXPECT_EQ(run.farthest, base.farthest) << label;
        EXPECT_EQ(run.buckets_processed, base.buckets_processed) << label;
        EXPECT_EQ(invariant(run.stats), invariant(base.stats)) << label;
        // The placement-derived view: bounded by the cross counters, and
        // actually populated once ≥ 2 shards interleave over the 2 nodes.
        EXPECT_LE(run.stats.cross_node_messages, run.stats.cross_messages);
        EXPECT_LE(run.stats.cross_node_bytes, run.stats.cross_bytes);
        if (k > 1 && run.stats.cross_messages > 0) {
          EXPECT_GT(run.stats.cross_node_messages, 0u) << label;
        }
      }
    }
  }
}

TEST_P(PlacementParity, SingleNodeEmulationIsTodayVerbatim) {
  // On a 1-node machine an *active* plan must change nothing observable:
  // same distances, same stats, cross_node identically zero.
  const Graph g = test::make_family(GetParam(), 150, 42);
  sssp::DeltaSteppingOptions opts;
  opts.partition.num_partitions = 4;
  const sssp::DeltaSteppingResult base = sssp::delta_stepping(g, 0, opts);

  const ScopedTopology t("0-3");
  opts.placement = rr();
  const sssp::DeltaSteppingResult run = sssp::delta_stepping(g, 0, opts);
  EXPECT_EQ(run.dist, base.dist);
  EXPECT_EQ(run.stats, base.stats);  // full struct: cross_node stays 0 too
}

INSTANTIATE_TEST_SUITE_P(Families, PlacementParity,
                         testing::ValuesIn(test::all_families()),
                         [](const auto& info) {
                           return std::string(test::family_name(info.param));
                         });

TEST(Placement, ClusterPipelineBitIdenticalUnderPlacement) {
  const Graph g = test::make_family(Family::kGnmUniform, 150, 42);
  core::ClusterOptions opts;
  opts.tau = 2;
  opts.stop_factor = 1.0;
  opts.policy = core::GrowingPolicy::kPartitioned;
  opts.partition.num_partitions = 7;
  const core::Clustering base = core::cluster(g, opts);

  const ScopedTopology t("0;1");
  opts.placement = cap();
  opts.transport = {.kind = mr::TransportKind::kPool, .processes = 2};
  const core::Clustering run = core::cluster(g, opts);
  EXPECT_EQ(run.center_of, base.center_of);
  EXPECT_EQ(run.dist_to_center, base.dist_to_center);
  EXPECT_EQ(run.centers, base.centers);
  EXPECT_EQ(run.radius, base.radius);
  EXPECT_EQ(invariant(run.stats), invariant(base.stats));
  // The placed run on an emulated two-node machine must *observe* its
  // cross-node traffic: the growth supersteps route real cross-shard
  // messages, and the plan homes K=7 shards on two nodes.
  EXPECT_GT(run.stats.cross_node_messages, 0u);
  EXPECT_LE(run.stats.cross_node_messages, run.stats.cross_messages);
  EXPECT_EQ(base.stats.cross_node_messages, 0u);  // no plan, no map
}

}  // namespace
}  // namespace gdiam
