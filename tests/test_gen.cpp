// Tests for the graph generators: structural counts, known diameters,
// degree shapes, weight distributions, determinism.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "gen/basic.hpp"
#include "gen/mesh.hpp"
#include "gen/product.hpp"
#include "gen/rmat.hpp"
#include "gen/road.hpp"
#include "gen/weights.hpp"
#include "graph/components.hpp"
#include "graph/ops.hpp"
#include "sssp/dijkstra.hpp"
#include "test_helpers.hpp"

namespace gdiam::gen {
namespace {

TEST(Basic, PathCounts) {
  const Graph g = path(10);
  EXPECT_EQ(g.num_nodes(), 10u);
  EXPECT_EQ(g.num_edges(), 9u);
  EXPECT_DOUBLE_EQ(sssp::exact_diameter(g), 9.0);
}

TEST(Basic, CycleCounts) {
  const Graph g = cycle(11);
  EXPECT_EQ(g.num_edges(), 11u);
  EXPECT_DOUBLE_EQ(sssp::exact_diameter(g), 5.0);
}

TEST(Basic, StarDiameterTwo) {
  const Graph g = star(9);
  EXPECT_EQ(g.num_edges(), 8u);
  EXPECT_EQ(g.degree(0), 8u);
  EXPECT_DOUBLE_EQ(sssp::exact_diameter(g), 2.0);
}

TEST(Basic, CompleteGraph) {
  const Graph g = complete(6);
  EXPECT_EQ(g.num_edges(), 15u);
  EXPECT_DOUBLE_EQ(sssp::exact_diameter(g), 1.0);
}

TEST(Basic, BinaryTreeStructure) {
  const Graph g = binary_tree(15);  // perfect tree of depth 3
  EXPECT_EQ(g.num_edges(), 14u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_DOUBLE_EQ(sssp::exact_diameter(g), 6.0);  // leaf to leaf
}

TEST(Basic, RandomTreeIsTree) {
  util::Xoshiro256 rng(3);
  const Graph g = random_tree(200, rng);
  EXPECT_EQ(g.num_edges(), 199u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Basic, GnmEdgeCountAndRange) {
  util::Xoshiro256 rng(5);
  const Graph g = gnm(100, 300, rng);
  EXPECT_EQ(g.num_nodes(), 100u);
  EXPECT_EQ(g.num_edges(), 300u);
}

TEST(Basic, GnmEnsureConnected) {
  util::Xoshiro256 rng(7);
  const Graph g = gnm(200, 220, rng, /*ensure_connected=*/true);
  EXPECT_TRUE(is_connected(g));
  EXPECT_GE(g.num_edges(), 220u);
}

TEST(Basic, GnmTooManyEdgesThrows) {
  util::Xoshiro256 rng(7);
  EXPECT_THROW((void)gnm(4, 7, rng), std::invalid_argument);
}

TEST(Mesh, CountsMatchFormulas) {
  for (const NodeId s : {2u, 5u, 16u}) {
    const Graph g = mesh(s);
    EXPECT_EQ(g.num_nodes(), s * s);
    EXPECT_EQ(g.num_edges(), static_cast<EdgeIndex>(2u * s * (s - 1)));
  }
}

TEST(Mesh, UnweightedDiameterIsTwiceSideMinusOne) {
  const Graph g = mesh(7);
  EXPECT_DOUBLE_EQ(sssp::exact_diameter(g), 12.0);
}

TEST(Mesh, CornerAndInteriorDegrees) {
  const Graph g = mesh(5);
  EXPECT_EQ(g.degree(mesh_node(5, 0, 0)), 2u);
  EXPECT_EQ(g.degree(mesh_node(5, 0, 2)), 3u);
  EXPECT_EQ(g.degree(mesh_node(5, 2, 2)), 4u);
}

TEST(Torus, IsFourRegular) {
  const Graph g = torus(6);
  for (NodeId u = 0; u < g.num_nodes(); ++u) EXPECT_EQ(g.degree(u), 4u);
  EXPECT_DOUBLE_EQ(sssp::exact_diameter(g), 6.0);  // 2 * floor(6/2)
}

TEST(Torus, TooSmallThrows) {
  EXPECT_THROW((void)torus(2), std::invalid_argument);
}

TEST(Rmat, NodeAndEdgeScale) {
  util::Xoshiro256 rng(11);
  const Graph g = rmat(10, 8, rng);
  EXPECT_EQ(g.num_nodes(), 1024u);
  // Duplicates and self-loops shrink m below the 8*2^10 samples, but most
  // samples must survive at this density.
  EXPECT_GT(g.num_edges(), 4000u);
  EXPECT_LE(g.num_edges(), 8192u);
}

TEST(Rmat, SkewedDegreeDistribution) {
  util::Xoshiro256 rng(13);
  const Graph g = rmat(12, 8, rng);
  const DegreeStats s = degree_stats(g);
  // Power-law-ish: max degree far above average.
  EXPECT_GT(static_cast<double>(s.max), 10.0 * s.avg);
}

TEST(Rmat, DeterministicForSeed) {
  util::Xoshiro256 a(17), b(17);
  const Graph g1 = rmat(8, 4, a);
  const Graph g2 = rmat(8, 4, b);
  EXPECT_EQ(g1.num_edges(), g2.num_edges());
  EXPECT_EQ(test::vec(g1.targets()), test::vec(g2.targets()));
}

TEST(Rmat, BadParamsThrow) {
  util::Xoshiro256 rng(1);
  EXPECT_THROW((void)rmat(0, 4, rng), std::invalid_argument);
  RmatParams p;
  p.a = 0.9;  // no longer sums to 1
  EXPECT_THROW((void)rmat(4, 4, rng, p), std::invalid_argument);
}

TEST(Road, ConnectedWithIntegerWeights) {
  util::Xoshiro256 rng(19);
  const Graph g = road_network(40, 30, rng);
  EXPECT_TRUE(is_connected(g));
  EXPECT_GT(g.num_nodes(), 1000u);  // giant component covers ~all of 1200
  for (const Weight w : g.edge_weights()) {
    EXPECT_DOUBLE_EQ(w, std::round(w));
    EXPECT_GE(w, 1.0);
  }
}

TEST(Road, BoundedDegree) {
  util::Xoshiro256 rng(23);
  const Graph g = road_network(50, 50, rng);
  EXPECT_LE(degree_stats(g).max, 8u);  // 4 street + diagonals
}

TEST(Road, LargeWeightedDiameterRegime) {
  util::Xoshiro256 rng(29);
  const Graph g = road_network(60, 60, rng);
  // Weighted diameter ≈ side * spacing: far larger than any edge weight.
  const Weight ecc = sssp::eccentricity(g, 0);
  EXPECT_GT(ecc, 20.0 * g.max_weight());
}

TEST(Road, ApproxNodesOverloadAndValidation) {
  util::Xoshiro256 rng(31);
  const Graph g = road_network(900, rng);
  EXPECT_GT(g.num_nodes(), 700u);
  EXPECT_LE(g.num_nodes(), 900u);
  EXPECT_THROW((void)road_network(1, 5, rng, RoadParams{}),
               std::invalid_argument);
}

TEST(Product, PathTimesPathIsMesh) {
  const Graph p1 = path(4), p2 = path(5);
  const Graph prod = cartesian_product(p1, p2);
  EXPECT_EQ(prod.num_nodes(), 20u);
  // mesh(4x5) edge count: 4*(5-1) + 5*(4-1) = 31.
  EXPECT_EQ(prod.num_edges(), 31u);
  EXPECT_TRUE(is_connected(prod));
}

TEST(Product, DiameterIsSumOfFactorDiameters) {
  const Graph a = cycle(7);   // diameter 3
  const Graph b = path(6);    // diameter 5
  const Graph prod = cartesian_product(a, b);
  EXPECT_DOUBLE_EQ(sssp::exact_diameter(prod), 8.0);
}

TEST(Product, InheritsWeights) {
  GraphBuilder ab(2);
  ab.add_edge(0, 1, 5.0);
  const Graph a = ab.build();
  const Graph prod = cartesian_product(a, path(3));
  // (0,0)-(1,0) inherits weight 5 from A; (0,0)-(0,1) weight 1 from B.
  EXPECT_DOUBLE_EQ(edge_weight(prod, product_node(3, 0, 0),
                               product_node(3, 1, 0)),
                   5.0);
  EXPECT_DOUBLE_EQ(edge_weight(prod, product_node(3, 0, 0),
                               product_node(3, 0, 1)),
                   1.0);
}

TEST(Product, RoadsProductShape) {
  util::Xoshiro256 rng(37);
  const Graph base = road_network(12, 12, rng);
  const Graph g = roads_product(3, base);
  EXPECT_EQ(g.num_nodes(), 3u * base.num_nodes());
  EXPECT_TRUE(is_connected(g));
}

TEST(Weights, UniformInHalfOpenInterval) {
  const Graph g = uniform_weights(mesh(12), 41);
  for (const Weight w : g.edge_weights()) {
    EXPECT_GT(w, 0.0);
    EXPECT_LE(w, 1.0);
  }
  // Mean near 0.5 over ~264 edges.
  EXPECT_NEAR(g.avg_weight(), 0.5, 0.1);
}

TEST(Weights, UniformIndependentOfEdgeOrder) {
  EXPECT_DOUBLE_EQ(edge_uniform_draw(99, 3, 8), edge_uniform_draw(99, 8, 3));
  EXPECT_NE(edge_uniform_draw(99, 3, 8), edge_uniform_draw(100, 3, 8));
}

TEST(Weights, UniformIntRange) {
  const Graph g = uniform_int_weights(mesh(10), 5, 9, 43);
  for (const Weight w : g.edge_weights()) {
    EXPECT_DOUBLE_EQ(w, std::round(w));
    EXPECT_GE(w, 5.0);
    EXPECT_LE(w, 9.0);
  }
}

TEST(Weights, UniformIntZeroLowClampedToOne) {
  const Graph g = uniform_int_weights(path(50), 0, 3, 47);
  EXPECT_GE(g.min_weight(), 1.0);
}

TEST(Weights, BimodalValuesAndFraction) {
  const Graph g = bimodal_weights(mesh(40), 1.0, 1e-6, 0.1, 53);
  std::size_t heavy = 0;
  for (const Weight w : g.edge_weights()) {
    EXPECT_TRUE(w == 1.0 || w == 1e-6);
    heavy += (w == 1.0);
  }
  const double frac =
      static_cast<double>(heavy) / static_cast<double>(g.num_directed_edges());
  EXPECT_NEAR(frac, 0.1, 0.03);
}

TEST(Weights, UnitWeights) {
  const Graph g = unit_weights(uniform_weights(mesh(6), 59));
  EXPECT_DOUBLE_EQ(g.min_weight(), 1.0);
  EXPECT_DOUBLE_EQ(g.max_weight(), 1.0);
}

TEST(Weights, ReweightPreservesTopology) {
  const Graph base = test::make_family(test::Family::kGnmUniform, 80, 61);
  const Graph g = uniform_weights(base, 61);
  EXPECT_EQ(g.num_edges(), base.num_edges());
  EXPECT_EQ(test::vec(g.targets()), test::vec(base.targets()));
}

}  // namespace
}  // namespace gdiam::gen
