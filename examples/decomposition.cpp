// Using the decomposition as a primitive in its own right.
//
// CLUSTER(G, τ) is useful beyond diameter estimation: it partitions a
// weighted graph into low-radius clusters in few parallel rounds (graph
// sparsification, sharding, landmark selection...). This example decomposes
// a road network at several granularities and reports cluster-size and
// radius distributions, then materializes the quotient graph and saves it.
//
// Usage:
//   decomposition [--side 150] [--tau 16] [--out quotient.bin]

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "gdiam.hpp"

namespace {

using namespace gdiam;

void describe(const Graph& g, const core::Clustering& c) {
  // Cluster size histogram.
  std::vector<NodeId> size_of(c.num_clusters(), 0);
  std::vector<NodeId> index_of(g.num_nodes(), kInvalidNode);
  for (NodeId i = 0; i < c.num_clusters(); ++i) index_of[c.centers[i]] = i;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    size_of[index_of[c.center_of[u]]]++;
  }
  std::sort(size_of.rbegin(), size_of.rend());

  const NodeId singletons = static_cast<NodeId>(
      std::count(size_of.begin(), size_of.end(), NodeId{1}));
  double mean_dist = 0.0;
  for (const Weight d : c.dist_to_center) mean_dist += d;
  mean_dist /= g.num_nodes();

  std::printf("  clusters:        %u (largest %u, median %u, singletons %u)\n",
              c.num_clusters(), size_of.front(),
              size_of[size_of.size() / 2], singletons);
  std::printf("  radius:          %.1f (mean node-to-center distance %.1f)\n",
              c.radius, mean_dist);
  std::printf("  final Delta:     %.1f after %u stages\n", c.delta_end,
              c.stages);
  std::printf("  MR cost:         %s\n", mr::to_string(c.stats).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gdiam;
  const util::Options opts(argc, argv);
  const auto side = static_cast<NodeId>(opts.get_int("side", 150));

  util::Xoshiro256 rng(21);
  const Graph g = gen::road_network(side, side, rng);
  std::printf("road network: n=%u m=%llu\n\n", g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()));

  // One exec::Context for the whole granularity sweep: every CLUSTER call
  // below reuses the same pooled growing engine, and any Δ-presplit the
  // doubling search builds is shared across the tau values. The
  // decompositions are identical to context-free calls.
  exec::Context ctx;

  // Sweep granularities: radius and rounds shrink as tau grows.
  for (const std::uint32_t tau : {2u, 16u, 128u}) {
    std::printf("CLUSTER(G, tau=%u):\n", tau);
    core::ClusterOptions o;
    o.tau = tau;
    o.seed = 5;
    describe(g, core::cluster(g, o, &ctx));
    std::printf("\n");
  }

  // Materialize the quotient of the user-chosen granularity and persist it:
  // a compressed summary of the network usable by downstream tooling.
  core::ClusterOptions o;
  o.tau = static_cast<std::uint32_t>(opts.get_int("tau", 16));
  o.seed = 5;
  const core::Clustering c = core::cluster(g, o, &ctx);
  const core::QuotientGraph q = core::build_quotient(g, c, &ctx);
  std::printf("quotient at tau=%u: %u nodes, %llu edges (%.1f%% of input)\n",
              o.tau, q.graph.num_nodes(),
              static_cast<unsigned long long>(q.graph.num_edges()),
              100.0 * q.graph.num_edges() / g.num_edges());

  const std::string out = opts.get_string("out", "");
  if (!out.empty()) {
    io::write_binary_file(q.graph, out);
    std::printf("quotient graph written to %s\n", out.c_str());
  }
  return 0;
}
