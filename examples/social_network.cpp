// Social-network scenario: power-law graphs with tiny weighted diameters.
//
// Mirrors the paper's livejournal/twitter experiments: generate an R-MAT
// graph (or load a SNAP edge list), extract the giant component, assign
// U(0,1] weights, and estimate the diameter. Shows the full preprocessing
// pipeline a practitioner needs: symmetrization, component extraction,
// weighting, decomposition diagnostics.
//
// Usage:
//   social_network [--scale 15] [--edge-factor 12] [--snap path.txt]

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "gdiam.hpp"

int main(int argc, char** argv) {
  using namespace gdiam;
  const util::Options opts(argc, argv);

  // --- obtain the social graph --------------------------------------------
  Graph raw;
  const std::string snap = opts.get_string("snap", "");
  if (!snap.empty()) {
    std::printf("loading SNAP edge list from %s (symmetrizing)...\n",
                snap.c_str());
    raw = io::read_edge_list_file(snap);
  } else {
    const auto scale = static_cast<unsigned>(opts.get_int("scale", 15));
    const auto ef = static_cast<EdgeIndex>(opts.get_int("edge-factor", 12));
    util::Xoshiro256 rng(9);
    raw = gen::rmat(scale, ef, rng);
    std::printf("R-MAT(%u) with edge factor %llu\n", scale,
                static_cast<unsigned long long>(ef));
  }

  // --- giant component + weights (the paper's preprocessing) ---------------
  const Components cc = connected_components(raw);
  std::printf("components: %u (giant covers %.1f%% of %u nodes)\n", cc.count,
              100.0 * cc.sizes[0] / raw.num_nodes(), raw.num_nodes());
  const Graph g =
      gen::uniform_weights(largest_component(raw).graph, /*seed=*/11);

  // Degree profile (power-law fingerprint).
  std::vector<EdgeIndex> degrees(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) degrees[u] = g.degree(u);
  std::sort(degrees.rbegin(), degrees.rend());
  std::printf("giant component: n=%u m=%llu; top degrees:", g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()));
  for (int i = 0; i < 5 && i < static_cast<int>(degrees.size()); ++i) {
    std::printf(" %llu", static_cast<unsigned long long>(degrees[i]));
  }
  std::printf(" (median %llu)\n\n",
              static_cast<unsigned long long>(degrees[degrees.size() / 2]));

  // --- diameter estimation --------------------------------------------------
  const Weight lb = sssp::diameter_lower_bound(g, 6, 3).lower_bound;
  core::DiameterApproxOptions o;
  o.cluster.tau =
      core::tau_for_cluster_target(g.num_nodes(), g.num_nodes() / 3);
  o.cluster.seed = 3;
  util::Timer t;
  const auto r = core::approximate_diameter(g, o);

  std::printf("weighted diameter: in [%.4f, %.4f]  (ratio <= %.3f, %s)\n",
              lb, r.estimate, r.estimate / lb,
              util::format_duration(t.seconds()).c_str());
  std::printf("decomposition: %u clusters, radius %.4f, %s\n",
              r.num_clusters, r.radius, mr::to_string(r.stats).c_str());
  std::printf("\nnote: on small-diameter graphs the estimate is dominated by\n"
              "the cluster radii; finer decompositions (larger tau) tighten\n"
              "it at the cost of a larger quotient graph.\n");
  return 0;
}
