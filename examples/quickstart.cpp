// Quickstart: estimate the weighted diameter of a graph in ~20 lines.
//
// Builds a small weighted mesh, runs CL-DIAM, and cross-checks against the
// exact diameter. This is the minimal end-to-end use of the public API:
//   1. get a Graph (generator, file, or GraphBuilder),
//   2. make an exec::Context (the reusable execution runtime: pooled
//      engines/buffers, cached graph layouts, per-phase cost accounting),
//   3. call core::approximate_diameter with it,
//   4. read the conservative estimate and the MR cost counters.
// The context is optional — approximate_diameter(g, options) works too — but
// passing one makes repeated runs on the same graph reuse every derived
// layout, and its StatsSink shows where the rounds/work went.

#include <cstdio>

#include "gdiam.hpp"

int main() {
  using namespace gdiam;

  // A 128x128 mesh with uniform random edge weights in (0, 1].
  const Graph g = gen::uniform_weights(gen::mesh(128), /*seed=*/42);
  std::printf("graph: n=%u nodes, m=%llu edges, avg weight %.3f\n",
              g.num_nodes(), static_cast<unsigned long long>(g.num_edges()),
              g.avg_weight());

  // CL-DIAM with default options (CLUSTER decomposition, initial Delta =
  // average edge weight, radius-aware estimate), run on one exec::Context.
  core::DiameterApproxOptions options;
  options.cluster.tau = 32;   // decomposition granularity
  options.cluster.seed = 1;   // reproducible center selection
  exec::Context ctx;
  const core::DiameterApproxResult result =
      core::approximate_diameter(g, options, &ctx);

  std::printf("CL-DIAM estimate:       %.4f (conservative upper bound)\n",
              result.estimate);
  std::printf("  clusters:             %u (radius %.4f)\n",
              result.num_clusters, result.radius);
  std::printf("  quotient:             %u nodes, %llu edges\n",
              result.num_clusters,
              static_cast<unsigned long long>(result.quotient_edges));
  std::printf("  MR cost:              %s\n",
              mr::to_string(result.stats).c_str());
  // The context's StatsSink breaks the cost down by pipeline phase.
  for (const auto& [phase, stats] : ctx.stats().phases()) {
    std::printf("    %-10s          %s\n", phase.c_str(),
                mr::to_string(stats).c_str());
  }

  // Ground truth via the iterated-sweep lower bound (what the paper uses
  // for graphs too large for exact all-pairs computation). The Δ-stepping
  // kernel shares the context, so all eight sweeps reuse one presplit and
  // one pooled buffer set; the bound equals the Dijkstra methodology's.
  sssp::SweepOptions sweep;
  sweep.max_sweeps = 8;
  sweep.seed = 7;
  sweep.use_delta_stepping = true;
  const Weight lower = sssp::diameter_lower_bound(g, sweep, &ctx).lower_bound;
  std::printf("sweep lower bound:      %.4f\n", lower);
  std::printf("approximation ratio:  <=%.4f\n", result.estimate / lower);
  return 0;
}
