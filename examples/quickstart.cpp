// Quickstart: estimate the weighted diameter of a graph in ~20 lines.
//
// Builds a small weighted mesh, runs CL-DIAM, and cross-checks against the
// exact diameter. This is the minimal end-to-end use of the public API:
//   1. get a Graph (generator, file, or GraphBuilder),
//   2. call core::approximate_diameter,
//   3. read the conservative estimate and the MR cost counters.

#include <cstdio>

#include "gdiam.hpp"

int main() {
  using namespace gdiam;

  // A 128x128 mesh with uniform random edge weights in (0, 1].
  const Graph g = gen::uniform_weights(gen::mesh(128), /*seed=*/42);
  std::printf("graph: n=%u nodes, m=%llu edges, avg weight %.3f\n",
              g.num_nodes(), static_cast<unsigned long long>(g.num_edges()),
              g.avg_weight());

  // CL-DIAM with default options (CLUSTER decomposition, initial Delta =
  // average edge weight, radius-aware estimate).
  core::DiameterApproxOptions options;
  options.cluster.tau = 32;   // decomposition granularity
  options.cluster.seed = 1;   // reproducible center selection
  const core::DiameterApproxResult result =
      core::approximate_diameter(g, options);

  std::printf("CL-DIAM estimate:       %.4f (conservative upper bound)\n",
              result.estimate);
  std::printf("  clusters:             %u (radius %.4f)\n",
              result.num_clusters, result.radius);
  std::printf("  quotient:             %u nodes, %llu edges\n",
              result.num_clusters,
              static_cast<unsigned long long>(result.quotient_edges));
  std::printf("  MR cost:              %s\n",
              mr::to_string(result.stats).c_str());

  // Ground truth via the iterated-sweep lower bound (what the paper uses
  // for graphs too large for exact all-pairs computation).
  const Weight lower = sssp::diameter_lower_bound(g, 8, 7).lower_bound;
  std::printf("sweep lower bound:      %.4f\n", lower);
  std::printf("approximation ratio:  <=%.4f\n", result.estimate / lower);
  return 0;
}
