// Road-network scenario: the paper's motivating workload for CL-DIAM.
//
// Generates (or loads) a road network — near-planar, bounded degree, huge
// weighted diameter — and pits CL-DIAM against the Δ-stepping 2-approximation
// on all four of the paper's indicators. On this topology Δ-stepping needs
// Θ(hop-diameter) rounds while CL-DIAM needs orders of magnitude fewer.
//
// Usage:
//   road_network [--side 200] [--dimacs path.gr] [--tau T] [--seed S]
// With --dimacs the real DIMACS data (e.g. roads-CAL from the 9th DIMACS
// challenge) is analyzed instead of the synthetic network.

#include <cstdio>
#include <string>

#include "gdiam.hpp"

int main(int argc, char** argv) {
  using namespace gdiam;
  const util::Options opts(argc, argv);
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));

  // --- obtain the road network -------------------------------------------
  Graph g;
  const std::string dimacs = opts.get_string("dimacs", "");
  if (!dimacs.empty()) {
    std::printf("loading DIMACS graph from %s...\n", dimacs.c_str());
    g = largest_component(io::read_dimacs_file(dimacs)).graph;
  } else {
    const auto side = static_cast<NodeId>(opts.get_int("side", 200));
    util::Xoshiro256 rng(seed);
    g = gen::road_network(side, side, rng);
    std::printf("synthetic road network (%ux%u grid)\n", side, side);
  }
  const DegreeStats deg = degree_stats(g);
  std::printf("n=%u m=%llu, degree avg %.2f max %llu, weights [%g, %g]\n\n",
              g.num_nodes(), static_cast<unsigned long long>(g.num_edges()),
              deg.avg, static_cast<unsigned long long>(deg.max),
              g.min_weight(), g.max_weight());

  // --- ground truth -------------------------------------------------------
  const auto sweep = sssp::diameter_lower_bound(g, 6, seed);
  std::printf("diameter lower bound (6 sweeps): %.0f\n\n", sweep.lower_bound);

  // --- CL-DIAM -------------------------------------------------------------
  core::DiameterApproxOptions o;
  o.cluster.tau = static_cast<std::uint32_t>(
      opts.get_int("tau", core::tau_for_cluster_target(g.num_nodes(),
                                                       g.num_nodes() / 4)));
  o.cluster.seed = seed;
  util::Timer t;
  const auto cl = core::approximate_diameter(g, o);
  const double cl_time = t.seconds();

  // --- Δ-stepping 2-approximation ------------------------------------------
  t.reset();
  const auto ds = sssp::diameter_two_approx(g, 0, {});
  const double ds_time = t.seconds();

  std::printf("%-22s %12s %12s\n", "", "CL-DIAM", "Delta-step");
  std::printf("%-22s %12.3f %12.3f\n", "estimate / lower bound",
              cl.estimate / sweep.lower_bound,
              ds.upper_bound / sweep.lower_bound);
  std::printf("%-22s %12s %12s\n", "time",
              util::format_duration(cl_time).c_str(),
              util::format_duration(ds_time).c_str());
  std::printf("%-22s %12llu %12llu\n", "MR rounds",
              static_cast<unsigned long long>(cl.stats.rounds()),
              static_cast<unsigned long long>(ds.stats.rounds()));
  std::printf("%-22s %12.2e %12.2e\n", "work (updates+msgs)",
              static_cast<double>(cl.stats.work()),
              static_cast<double>(ds.stats.work()));
  std::printf("\nCL-DIAM used %u clusters of radius <= %.0f (tau=%u).\n",
              cl.num_clusters, cl.radius, o.cluster.tau);
  std::printf("On road topologies expect a 10-100x round gap: this is the\n"
              "regime Corollary 1 formalizes.\n");
  return 0;
}
